// Query-topology correctness sweep: star, chain, and clique join graphs
// over 3-5 streams, every backend, checked for exact output equality
// against an independent brute-force join — with selections applied.
// Complements test_integration.cpp's K4-clique coverage.
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <vector>

#include "engine/executor.hpp"

namespace amri {
namespace {

using engine::ExecutorOptions;
using engine::IndexBackend;
using engine::JoinPredicate;
using engine::QuerySpec;

class VectorSource final : public engine::TupleSource {
 public:
  explicit VectorSource(const std::vector<Tuple>& tuples)
      : tuples_(&tuples) {}
  std::optional<Tuple> next() override {
    if (pos_ >= tuples_->size()) return std::nullopt;
    return (*tuples_)[pos_++];
  }

 private:
  const std::vector<Tuple>* tuples_;
  std::size_t pos_ = 0;
};

/// Star: stream 0 is the hub; spoke i joins hub attr (i-1) with its attr 0.
QuerySpec star_query(std::size_t k, TimeMicros window) {
  std::vector<Schema> schemas;
  std::vector<std::string> hub_attrs;
  for (std::size_t i = 1; i < k; ++i) {
    hub_attrs.push_back("h" + std::to_string(i));
  }
  schemas.emplace_back("Hub", hub_attrs);
  for (std::size_t i = 1; i < k; ++i) {
    schemas.emplace_back("Spoke" + std::to_string(i),
                         std::vector<std::string>{"key", "payload"});
  }
  std::vector<JoinPredicate> preds;
  for (StreamId i = 1; i < k; ++i) {
    preds.push_back(JoinPredicate{0, static_cast<AttrId>(i - 1), i, 0});
  }
  return QuerySpec(std::move(schemas), std::move(preds), window);
}

/// Chain: stream i joins stream i+1; distinct attributes on middles.
QuerySpec chain_query(std::size_t k, TimeMicros window) {
  std::vector<Schema> schemas;
  for (std::size_t i = 0; i < k; ++i) {
    schemas.emplace_back("C" + std::to_string(i),
                         std::vector<std::string>{"left", "right"});
  }
  std::vector<JoinPredicate> preds;
  for (StreamId i = 0; i + 1 < k; ++i) {
    // i.right == (i+1).left
    preds.push_back(JoinPredicate{i, 1, static_cast<StreamId>(i + 1), 0});
  }
  return QuerySpec(std::move(schemas), std::move(preds), window);
}

std::vector<Tuple> random_arrivals(const QuerySpec& q, std::size_t n,
                                   std::int64_t domain, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Tuple t;
    t.stream = static_cast<StreamId>(rng.below(q.num_streams()));
    t.ts = seconds_to_micros(0.05 * static_cast<double>(i));
    t.seq = i;
    for (AttrId a = 0; a < q.schema(t.stream).num_attrs(); ++a) {
      t.values.push_back(
          static_cast<Value>(rng.below(static_cast<std::uint64_t>(domain))));
    }
    out.push_back(std::move(t));
  }
  return out;
}

/// Brute-force reference join honoring windows AND selections.
std::uint64_t reference_count(const QuerySpec& q,
                              const std::vector<Tuple>& arrivals) {
  const std::size_t k = q.num_streams();
  std::vector<std::deque<Tuple>> windows(k);
  std::uint64_t results = 0;
  for (const Tuple& t : arrivals) {
    for (auto& w : windows) {
      while (!w.empty() && w.front().ts < t.ts - q.window()) w.pop_front();
    }
    if (!q.selection(t.stream).matches(t)) continue;
    windows[t.stream].push_back(t);
    std::vector<const Tuple*> pick(k, nullptr);
    pick[t.stream] = &t;
    const std::function<void(StreamId)> rec = [&](StreamId s) {
      if (s == k) {
        ++results;
        return;
      }
      if (s == t.stream) {
        rec(s + 1);
        return;
      }
      for (const Tuple& cand : windows[s]) {
        pick[s] = &cand;
        bool ok = true;
        for (const auto& p : q.predicates()) {
          const Tuple* l = pick[p.left_stream];
          const Tuple* r = pick[p.right_stream];
          if (l != nullptr && r != nullptr &&
              l->at(p.left_attr) != r->at(p.right_attr)) {
            ok = false;
            break;
          }
        }
        if (ok) rec(s + 1);
        pick[s] = nullptr;
      }
    };
    rec(0);
  }
  return results;
}

ExecutorOptions zero_cost(IndexBackend backend, std::size_t n_attrs) {
  ExecutorOptions o;
  o.duration = seconds_to_micros(10000);
  o.costs = CostParams{0, 0, 0, 0, 0, 0};
  o.stem.backend = backend;
  std::vector<std::uint8_t> bits(std::max<std::size_t>(n_attrs, 1), 2);
  o.stem.initial_config = index::IndexConfig(bits);
  o.stem.initial_modules = {0b01};
  return o;
}

struct TopologyCase {
  enum Kind { kStar, kChain } kind;
  std::size_t streams;
  IndexBackend backend;
  std::uint64_t seed;
};

class TopologySweep : public ::testing::TestWithParam<TopologyCase> {};

TEST_P(TopologySweep, MatchesReferenceExactly) {
  const TopologyCase& tc = GetParam();
  const TimeMicros window = seconds_to_micros(3);
  QuerySpec q = tc.kind == TopologyCase::kStar
                    ? star_query(tc.streams, window)
                    : chain_query(tc.streams, window);
  const auto arrivals = random_arrivals(q, 400, 6, tc.seed);
  const std::uint64_t expected = reference_count(q, arrivals);

  // Max JAS size across states (hub has streams-1 attrs).
  std::size_t max_jas = 0;
  for (StreamId s = 0; s < q.num_streams(); ++s) {
    max_jas = std::max(max_jas, q.layout(s).jas.size());
  }
  // Per-state configs need matching arity; re-spread happens per stem via
  // the zero-config fallback, so pass a config of the hub's arity only
  // when every state shares it — otherwise rely on the fallback.
  ExecutorOptions opts = zero_cost(tc.backend, max_jas);
  VectorSource src(arrivals);
  engine::Executor ex(q, opts);
  const auto r = ex.run(src);
  EXPECT_EQ(r.outputs, expected)
      << "kind=" << static_cast<int>(tc.kind) << " streams=" << tc.streams;
}

std::vector<TopologyCase> topology_cases() {
  std::vector<TopologyCase> cases;
  for (const auto kind : {TopologyCase::kStar, TopologyCase::kChain}) {
    for (const std::size_t k : {3u, 4u, 5u}) {
      for (const auto backend :
           {IndexBackend::kScan, IndexBackend::kAmri,
            IndexBackend::kAccessModules}) {
        cases.push_back(TopologyCase{kind, k, backend, 100 + k});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologySweep, ::testing::ValuesIn(topology_cases()),
    [](const ::testing::TestParamInfo<TopologyCase>& info) {
      std::string name =
          info.param.kind == TopologyCase::kStar ? "star" : "chain";
      name += std::to_string(info.param.streams);
      name += "_b" + std::to_string(static_cast<int>(info.param.backend));
      return name;
    });

TEST(TopologySweep, SelectionsRespectedInStarQuery) {
  const TimeMicros window = seconds_to_micros(3);
  QuerySpec q = star_query(3, window);
  q.set_selection(1, engine::Selection({{0, engine::CompareOp::kLt, 3}}));
  const auto arrivals = random_arrivals(q, 500, 5, 321);
  const std::uint64_t expected = reference_count(q, arrivals);
  ASSERT_GT(expected, 0u);
  VectorSource src(arrivals);
  engine::Executor ex(q, zero_cost(IndexBackend::kAmri, 2));
  EXPECT_EQ(ex.run(src).outputs, expected);
}

}  // namespace
}  // namespace amri
