// Integration tests: the full pipeline (generator → eddy → STeM → results)
// checked against an independent reference join, plus end-to-end
// adaptivity: a selectivity flip must change the chosen index
// configuration, and every index backend must produce identical results on
// identical input.
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "engine/executor.hpp"
#include "workload/scenario.hpp"

namespace amri {
namespace {

using engine::ExecutorOptions;
using engine::IndexBackend;
using engine::QuerySpec;

/// Replayable source over a pre-generated arrival vector.
class VectorSource final : public engine::TupleSource {
 public:
  explicit VectorSource(const std::vector<Tuple>& tuples)
      : tuples_(&tuples) {}
  std::optional<Tuple> next() override {
    if (pos_ >= tuples_->size()) return std::nullopt;
    return (*tuples_)[pos_++];
  }

 private:
  const std::vector<Tuple>* tuples_;
  std::size_t pos_ = 0;
};

/// Reference join: brute-force sliding-window multi-way join, independent
/// of all engine machinery. Counts each result when its last member
/// arrives.
std::uint64_t reference_join_count(const QuerySpec& q,
                                   const std::vector<Tuple>& arrivals) {
  const std::size_t k = q.num_streams();
  std::vector<std::deque<Tuple>> windows(k);
  std::uint64_t results = 0;

  // All predicates as (stream, attr, stream, attr).
  const auto& preds = q.predicates();

  for (const Tuple& t : arrivals) {
    // Expire.
    for (auto& w : windows) {
      while (!w.empty() && w.front().ts < t.ts - q.window()) w.pop_front();
    }
    windows[t.stream].push_back(t);
    // Enumerate combinations including t from the other windows.
    std::vector<const Tuple*> pick(k, nullptr);
    pick[t.stream] = &t;
    std::uint64_t found = 0;
    const std::function<void(StreamId)> rec = [&](StreamId s) {
      if (s == k) {
        ++found;
        return;
      }
      if (s == t.stream) {
        rec(s + 1);
        return;
      }
      for (const Tuple& cand : windows[s]) {
        pick[s] = &cand;
        bool ok = true;
        // Check every predicate whose endpoints are both picked so far.
        for (const auto& p : preds) {
          const Tuple* l = pick[p.left_stream];
          const Tuple* r = pick[p.right_stream];
          if (l != nullptr && r != nullptr &&
              l->at(p.left_attr) != r->at(p.right_attr)) {
            ok = false;
            break;
          }
        }
        if (ok) rec(s + 1);
        pick[s] = nullptr;
      }
    };
    rec(0);
    results += found;
  }
  return results;
}

std::vector<Tuple> generate_arrivals(double seconds, double rate,
                                     std::int64_t hot, std::int64_t cold,
                                     std::uint64_t seed) {
  workload::ScenarioOptions o;
  o.rate_per_sec = rate;
  o.window_seconds = 4.0;
  o.phase_seconds = seconds / 2;
  o.hot_domain = hot;
  o.cold_domain = cold;
  o.seed = seed;
  o.generate_seconds = seconds;
  workload::Scenario sc(o);
  std::vector<Tuple> out;
  const auto src = sc.make_source();
  while (const auto t = src->next()) out.push_back(*t);
  return out;
}

QuerySpec query4(double window_seconds = 4.0) {
  return engine::make_complete_join_query(4,
                                          seconds_to_micros(window_seconds));
}

ExecutorOptions options_for(IndexBackend backend) {
  ExecutorOptions o;
  o.duration = seconds_to_micros(1000);  // run to source exhaustion
  o.stem.backend = backend;
  o.stem.initial_config = index::IndexConfig({2, 2, 2});
  o.stem.initial_modules = {0b001, 0b010, 0b100};
  tuner::TunerOptions t;
  t.reassess_every = 400;
  t.optimizer.bit_budget = 8;
  t.optimizer.max_bits_per_attr = 6;
  o.stem.amri_tuner = t;
  return o;
}

TEST(Integration, EngineMatchesReferenceJoinExactly) {
  const QuerySpec q = query4();
  const auto arrivals = generate_arrivals(12.0, 25.0, 6, 18, 101);
  const std::uint64_t expected = reference_join_count(q, arrivals);
  ASSERT_GT(expected, 0u) << "workload produced no joins; recalibrate";

  for (const auto backend :
       {IndexBackend::kScan, IndexBackend::kAmri, IndexBackend::kStaticBitmap,
        IndexBackend::kAccessModules, IndexBackend::kStaticModules}) {
    VectorSource src(arrivals);
    engine::Executor ex(q, options_for(backend));
    const auto result = ex.run(src);
    EXPECT_EQ(result.outputs, expected)
        << "backend " << static_cast<int>(backend);
  }
}

TEST(Integration, AllBackendsAgreeAcrossSeeds) {
  const QuerySpec q = query4();
  for (const std::uint64_t seed : {7ull, 8ull, 9ull}) {
    const auto arrivals = generate_arrivals(8.0, 20.0, 5, 15, seed);
    std::map<int, std::uint64_t> outputs;
    for (const auto backend :
         {IndexBackend::kScan, IndexBackend::kAmri,
          IndexBackend::kAccessModules}) {
      VectorSource src(arrivals);
      engine::Executor ex(q, options_for(backend));
      outputs[static_cast<int>(backend)] = ex.run(src).outputs;
    }
    EXPECT_EQ(outputs[static_cast<int>(IndexBackend::kScan)],
              outputs[static_cast<int>(IndexBackend::kAmri)])
        << "seed " << seed;
    EXPECT_EQ(outputs[static_cast<int>(IndexBackend::kScan)],
              outputs[static_cast<int>(IndexBackend::kAccessModules)])
        << "seed " << seed;
  }
}

TEST(Integration, TunerAdaptsIndexDuringRun) {
  const QuerySpec q = query4();
  const auto arrivals = generate_arrivals(30.0, 40.0, 5, 30, 55);
  VectorSource src(arrivals);
  auto opts = options_for(IndexBackend::kAmri);
  opts.model_params.lambda_d = 40;
  opts.model_params.lambda_r = 160;
  opts.model_params.window_units = 4;
  engine::Executor ex(q, opts);
  const auto result = ex.run(src);
  std::uint64_t total_migrations = 0;
  for (const auto& s : result.states) total_migrations += s.migrations;
  EXPECT_GT(total_migrations, 0u) << "tuner never adapted under drift";
}

TEST(Integration, AmriOutperformsScanInModelledTime) {
  // Same arrivals; AMRI's indexed probes must charge far less virtual
  // time than pure scans.
  const QuerySpec q = query4();
  const auto arrivals = generate_arrivals(10.0, 50.0, 6, 20, 77);
  VectorSource src_scan(arrivals);
  VectorSource src_amri(arrivals);
  engine::Executor scan_ex(q, options_for(IndexBackend::kScan));
  engine::Executor amri_ex(q, options_for(IndexBackend::kAmri));
  const auto scan_result = scan_ex.run(src_scan);
  const auto amri_result = amri_ex.run(src_amri);
  ASSERT_EQ(scan_result.outputs, amri_result.outputs);
  EXPECT_LT(amri_result.charged_us, scan_result.charged_us * 0.8);
}

TEST(Integration, WarmupDoesNotChangeMeasuredCorrectness) {
  const QuerySpec q = query4();
  const auto arrivals = generate_arrivals(10.0, 25.0, 6, 18, 31);
  VectorSource src(arrivals);
  auto opts = options_for(IndexBackend::kAmri);
  opts.warmup = seconds_to_micros(4);
  opts.duration = seconds_to_micros(1000);
  engine::Executor ex(q, opts);
  const auto result = ex.run(src);
  // Measured outputs + warm-up outputs == reference total.
  const std::uint64_t total = reference_join_count(q, arrivals);
  EXPECT_LE(result.outputs, total);
  EXPECT_GT(result.outputs, 0u);
}

}  // namespace
}  // namespace amri
