// Thrash regression: the rotating-hot-set scenario is engineered so that
// every assessment epoch sees a different dominant access pattern. The
// legacy always-migrate tuner chases each rotation; the default
// production guardrails must contain the thrash — few migrations, the
// blocked ones visible as suppressed decisions on the telemetry decision
// timeline — without losing throughput.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/executor.hpp"
#include "telemetry/telemetry.hpp"
#include "tuner/amri_tuner.hpp"
#include "workload/adversarial.hpp"

namespace amri {
namespace {

struct ThrashRun {
  std::uint64_t migrations = 0;
  std::uint64_t max_state_migrations = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t outputs = 0;
  std::uint64_t suppressed_events = 0;  ///< decision-timeline visibility
};

ThrashRun run_rotating_hot_set(bool guardrails) {
  workload::AdversarialOptions aopts;
  aopts.rate_per_sec = 80.0;
  aopts.seed = 1;
  aopts.generate_seconds = 0.0;
  const auto scenario =
      workload::AdversarialScenario::make("rotating_hot_set", aopts);

  auto eopts = scenario->executor_options();
  eopts.duration = seconds_to_micros(30.0);
  eopts.sample_every = seconds_to_micros(10.0);
  eopts.stem.backend = engine::IndexBackend::kAmri;
  const std::size_t n_attrs = scenario->query().layout(0).jas.size();
  std::vector<std::uint8_t> bits(n_attrs, 0);
  for (int b = 0; b < 8; ++b) ++bits[static_cast<std::size_t>(b) % n_attrs];
  eopts.stem.initial_config = index::IndexConfig(bits);
  tuner::TunerOptions topts;
  topts.optimizer.bit_budget = 8;
  if (guardrails) {
    tuner::GuardrailOptions g;  // default production settings
    g.enabled = true;
    topts.guardrails = g;
  }
  eopts.stem.amri_tuner = topts;

  telemetry::TelemetryOptions tel_opts;
  tel_opts.event_capacity = 1 << 17;
  telemetry::Telemetry telemetry(tel_opts);
  eopts.telemetry = &telemetry;

  engine::Executor ex(scenario->query(), eopts);
  const auto source = scenario->make_source();
  const auto r = ex.run(*source);

  ThrashRun out;
  out.outputs = r.outputs;
  for (const auto& st : r.states) {
    out.migrations += st.migrations;
    out.max_state_migrations = std::max(out.max_state_migrations,
                                        st.migrations);
    out.suppressed += st.suppressed;
  }
  for (const auto& ev : telemetry.events().snapshot()) {
    if (ev.kind != telemetry::EventKind::kTunerDecision) continue;
    if (ev.payload.find("\"suppressed\":true") != std::string::npos) {
      ++out.suppressed_events;
    }
  }
  return out;
}

TEST(TunerThrash, DefaultGuardrailsContainRotatingHotSetThrash) {
  const ThrashRun legacy = run_rotating_hot_set(false);
  const ThrashRun guarded = run_rotating_hot_set(true);

  // The scenario must actually thrash the legacy tuner...
  EXPECT_GE(legacy.migrations, 8u);
  EXPECT_EQ(legacy.suppressed, 0u);
  EXPECT_EQ(legacy.suppressed_events, 0u);

  // ...and the default guardrails must settle it: at most 2 migrations
  // per state (the initial adaptation plus at most one correction), at
  // least a 3x cut overall at this scale (the committed 60 s bench entry
  // pins the headline >= 5x).
  EXPECT_LE(guarded.max_state_migrations, 2u);
  EXPECT_LE(guarded.migrations * 3, legacy.migrations);

  // The blocked migrations are visible: counted per state and present as
  // suppressed decisions on the telemetry decision timeline.
  EXPECT_GT(guarded.suppressed, 0u);
  EXPECT_GT(guarded.suppressed_events, 0u);

  // Containment must not cost throughput.
  EXPECT_GE(guarded.outputs * 10, legacy.outputs * 9);
}

}  // namespace
}  // namespace amri
