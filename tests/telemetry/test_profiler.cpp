#include "telemetry/profiler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>

#include "telemetry/metrics.hpp"

namespace amri::telemetry {
namespace {

// Busy-wait so scope durations are guaranteed minimums (sleep_for may
// oversleep arbitrarily but never undershoots either; spinning keeps the
// test's lower bounds tight without depending on scheduler behavior).
void spin_for_us(std::int64_t us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(PhaseName, CoversEveryPhase) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const char* name = phase_name(static_cast<Phase>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string_view(name).size(), 0u);
  }
  EXPECT_STREQ(phase_name(Phase::kDrain), "drain");
  EXPECT_STREQ(phase_name(Phase::kSnapshotMerge), "snapshot_merge");
}

TEST(Profiler, CountsEntriesAndExclusiveTime) {
  MetricsRegistry registry;
  Profiler profiler(registry);
  {
    ScopedPhase scope(&profiler, Phase::kRoute);
    spin_for_us(200);
  }
  const auto stats = profiler.stats(Phase::kRoute);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.exclusive_us, 200.0 * 0.9);
  EXPECT_EQ(profiler.stats(Phase::kProbe).entries, 0u);
}

TEST(Profiler, NestedScopePausesParent) {
  MetricsRegistry registry;
  Profiler profiler(registry);
  {
    ScopedPhase route(&profiler, Phase::kRoute);
    spin_for_us(200);
    {
      ScopedPhase probe(&profiler, Phase::kProbe);
      spin_for_us(400);
    }
    spin_for_us(200);
  }
  const auto route = profiler.stats(Phase::kRoute);
  const auto probe = profiler.stats(Phase::kProbe);
  // The child's 400us is attributed to kProbe only; the parent keeps its
  // own ~400us. Exclusive times sum to the total in-scope wall time.
  EXPECT_GE(probe.exclusive_us, 400.0 * 0.9);
  EXPECT_GE(route.exclusive_us, 400.0 * 0.9);
  EXPECT_DOUBLE_EQ(profiler.total_exclusive_us(),
                   route.exclusive_us + probe.exclusive_us);
}

TEST(Profiler, ScopeHistogramIsInclusive) {
  MetricsRegistry registry;
  Profiler profiler(registry);
  {
    ScopedPhase route(&profiler, Phase::kRoute);
    ScopedPhase probe(&profiler, Phase::kProbe);
    spin_for_us(300);
  }
  // The route scope's histogram entry covers the nested probe time: the
  // histogram records inclusive durations, the stats exclusive ones.
  const Histogram& route_hist = profiler.scope_histogram(Phase::kRoute);
  ASSERT_EQ(route_hist.count(), 1u);
  EXPECT_GE(route_hist.sum(), 300.0 * 0.9);
  EXPECT_GE(route_hist.sum(), profiler.stats(Phase::kRoute).exclusive_us);
}

TEST(Profiler, ExclusiveGaugesMirrorStats) {
  MetricsRegistry registry;
  Profiler profiler(registry);
  {
    ScopedPhase scope(&profiler, Phase::kInsert);
    spin_for_us(100);
  }
  const Gauge* gauge = registry.find_gauge("profile.insert.exclusive_us");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value(), profiler.stats(Phase::kInsert).exclusive_us);
}

TEST(Profiler, RepeatedScopesAccumulate) {
  MetricsRegistry registry;
  Profiler profiler(registry);
  for (int i = 0; i < 5; ++i) {
    ScopedPhase scope(&profiler, Phase::kExpiry);
    spin_for_us(50);
  }
  EXPECT_EQ(profiler.stats(Phase::kExpiry).entries, 5u);
  EXPECT_EQ(profiler.scope_histogram(Phase::kExpiry).count(), 5u);
  EXPECT_GE(profiler.stats(Phase::kExpiry).exclusive_us, 5 * 50.0 * 0.9);
}

TEST(Profiler, OverflowDepthCountedButFoldedIntoParent) {
  MetricsRegistry registry;
  Profiler profiler(registry);
  profiler.start(Phase::kRoute);
  for (std::size_t i = 0; i < Profiler::kMaxDepth + 4; ++i) {
    profiler.start(Phase::kProbe);
  }
  for (std::size_t i = 0; i < Profiler::kMaxDepth + 4; ++i) {
    profiler.stop();
  }
  profiler.stop();
  // Every entry is counted even past kMaxDepth; nothing crashes and the
  // route scope unwinds cleanly.
  EXPECT_EQ(profiler.stats(Phase::kProbe).entries, Profiler::kMaxDepth + 4);
  EXPECT_EQ(profiler.stats(Phase::kRoute).entries, 1u);
}

TEST(ScopedPhase, NullProfilerIsNoOp) {
  // The detached-telemetry contract: a null profiler makes the scope free.
  ScopedPhase scope(nullptr, Phase::kRoute);
  SUCCEED();
}

TEST(PrintPhaseTable, RendersEnteredPhasesAndCoverage) {
  MetricsRegistry registry;
  Profiler profiler(registry);
  {
    ScopedPhase scope(&profiler, Phase::kDrain);
    spin_for_us(100);
  }
  std::ostringstream out;
  print_phase_table(out, profiler, profiler.total_exclusive_us());
  const std::string text = out.str();
  EXPECT_NE(text.find("drain"), std::string::npos);
  EXPECT_NE(text.find("profiled"), std::string::npos);
  // Phases never entered are omitted from the table.
  EXPECT_EQ(text.find("migration"), std::string::npos);
}

}  // namespace
}  // namespace amri::telemetry
