#include "telemetry/event_log.hpp"

#include <gtest/gtest.h>

#include "telemetry/telemetry.hpp"

namespace amri::telemetry {
namespace {

Event make_event(EventKind kind, TimeMicros t) {
  Event e;
  e.kind = kind;
  e.t = t;
  return e;
}

TEST(EventLog, AssignsMonotonicSequence) {
  EventLog log(8);
  EXPECT_EQ(log.emit(make_event(EventKind::kRunStart, 0)), 0u);
  EXPECT_EQ(log.emit(make_event(EventKind::kSample, 10)), 1u);
  EXPECT_EQ(log.emit(make_event(EventKind::kRunEnd, 20)), 2u);
  EXPECT_EQ(log.total_emitted(), 3u);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.overwritten(), 0u);
}

TEST(EventLog, RingOverwritesOldestKeepsNewest) {
  EventLog log(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    log.emit(make_event(EventKind::kSample, static_cast<TimeMicros>(i)));
  }
  EXPECT_EQ(log.total_emitted(), 10u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.overwritten(), 6u);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, and exactly the last four emitted (seq 6..9).
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
  }
}

TEST(EventLog, SnapshotIsSequenceOrdered) {
  EventLog log(16);
  for (std::uint64_t i = 0; i < 7; ++i) {
    log.emit(make_event(EventKind::kSample, static_cast<TimeMicros>(100 - i)));
  }
  const auto events = log.snapshot();
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST(EventLog, SinkSeesEveryEventDespiteOverwrite) {
  EventLog log(2);
  std::vector<std::uint64_t> seen;
  log.set_sink([&seen](const Event& e) { seen.push_back(e.seq); });
  for (int i = 0; i < 6; ++i) {
    log.emit(make_event(EventKind::kMigrationStart, 0));
  }
  ASSERT_EQ(seen.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(seen[i], i);
  EXPECT_EQ(log.size(), 2u);  // ring retained only the tail
}

TEST(EventLog, ClearForgetsEverything) {
  EventLog log(4);
  log.emit(make_event(EventKind::kOom, 5));
  log.clear();
  EXPECT_EQ(log.total_emitted(), 0u);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(EventKindName, CoversEveryKind) {
  for (int k = 0; k <= static_cast<int>(EventKind::kBackpressure); ++k) {
    const char* name = event_kind_name(static_cast<EventKind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "");
  }
}

TEST(Telemetry, StampsEventsWithAttachedClock) {
  Telemetry telemetry;
  telemetry.emit(EventKind::kRunStart, 0);  // no clock: stamped 0
  VirtualClock clock;
  clock.advance(42);
  telemetry.attach_clock(&clock);
  telemetry.emit(EventKind::kSample, 1, "{\"x\":1}");
  const auto events = telemetry.events().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].t, 0);
  EXPECT_EQ(events[1].t, 42);
  EXPECT_EQ(events[1].stream, 1u);
  EXPECT_EQ(events[1].payload, "{\"x\":1}");
}

}  // namespace
}  // namespace amri::telemetry
