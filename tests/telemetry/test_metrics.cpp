#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

namespace amri::telemetry {
namespace {

TEST(Counter, AddsAndResets) {
  MetricsRegistry reg;
  Counter& c = reg.counter("x");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("g");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.set(-7.0);  // gauges go down
  EXPECT_DOUBLE_EQ(g.value(), -7.0);
}

TEST(Histogram, BucketsObservations) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0 (<= 1.0)
  h.observe(1.0);   // bucket 0 (boundary counts in its bucket)
  h.observe(3.0);   // bucket 2 (<= 4.0)
  h.observe(100.0); // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_DOUBLE_EQ(h.max_observed(), 100.0);
  const auto& buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 0u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Histogram, MeanAndReset) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", Histogram::linear_bounds(1.0, 1.0, 4));
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);  // empty histogram
  h.observe(2.0);
  h.observe(4.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(Histogram, ExponentialBounds) {
  const auto bounds = Histogram::exponential_bounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0, 40.0});
  // 10 observations spread evenly into the (0, 10] bucket: the q-quantile
  // interpolates linearly across the bucket holding rank q*count.
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  // target rank 5 of 10 in (0, 10]: 0 + 10 * 5/10 = 5.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
  // All mass in one bucket; p100 clamps to the observed max, not the
  // bucket's upper bound.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 5.0);
}

TEST(Histogram, PercentileAcrossBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // (0, 1]
  h.observe(1.5);  // (1, 2]
  h.observe(1.6);  // (1, 2]
  h.observe(3.0);  // (2, 4]
  // target rank 0.5*4 = 2 lands in the (1, 2] bucket: below=1, so the
  // interpolated estimate is 1 + (2-1) * (2-1)/2 = 1.5.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.5);
  // rank 4 is the (2, 4] bucket: 2 + 2 * 1/1 = 4, clamped to max 3.0.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 3.0);
}

TEST(Histogram, PercentileOverflowBucketReportsMax) {
  Histogram h({1.0});
  h.observe(0.5);
  h.observe(100.0);  // overflow: no upper bound to interpolate against
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 100.0);
}

TEST(Histogram, PercentileEmptyAndClampedQ) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // empty histogram
  h.observe(1.5);
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
}

TEST(MetricsRegistry, SameNameSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("n");
  Counter& b = reg.counter("n");
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);
}

TEST(MetricsRegistry, StableReferencesAcrossInserts) {
  MetricsRegistry reg;
  Counter& first = reg.counter("a");
  first.add(7);
  // Registering many more instruments must not invalidate `first`.
  for (int i = 0; i < 100; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(first.value(), 7u);
  EXPECT_EQ(reg.counter("a").value(), 7u);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
  reg.counter("present");
  EXPECT_NE(reg.find_counter("present"), nullptr);
}

TEST(MetricsRegistry, SizeAndClear) {
  MetricsRegistry reg;
  reg.counter("a");
  reg.gauge("b");
  reg.histogram("c", {1.0});
  EXPECT_EQ(reg.size(), 3u);
  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
}

}  // namespace
}  // namespace amri::telemetry
