// End-to-end trace golden test: run a small amri_sim-style scenario with
// telemetry attached, export the JSON-lines trace, and assert the file is
// well-formed — every line parses, events are time-ordered, at least one
// complete tuner decision is recorded, and migration start/end events pair
// up. This is the acceptance gate for the telemetry subsystem.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/executor.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/scenario.hpp"

namespace amri {
namespace {

/// Minimal structural JSON check: the line is one object with balanced
/// braces/brackets outside of strings and no trailing garbage. Not a full
/// parser, but catches truncated lines, stray commas-at-top-level, and
/// unescaped quotes — the failure modes of hand-rolled writers.
bool is_json_object_line(const std::string& line) {
  if (line.empty() || line.front() != '{') return false;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        --depth;
        if (depth < 0) return false;
        if (depth == 0 && i + 1 != line.size()) return false;  // trailing
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

/// Extract a top-level integer field ("\"t\":123") from a JSON line.
long long int_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atoll(line.c_str() + pos + needle.size());
}

bool has_kind(const std::string& line, const std::string& kind) {
  return line.find("\"type\":\"event\"") != std::string::npos &&
         line.find("\"kind\":\"" + kind + "\"") != std::string::npos;
}

TEST(TraceGolden, ShortRunEmitsWellFormedTrace) {
  // An amri_sim-style run, scaled down: 4-way join, drifting selectivity,
  // AMRI backend with frequent reassessment so decisions (and migrations)
  // land inside a few simulated seconds.
  workload::ScenarioOptions sopts;
  sopts.rate_per_sec = 40.0;
  sopts.window_seconds = 5.0;
  sopts.phase_seconds = 4.0;
  sopts.seed = 7;
  const workload::Scenario scenario{workload::ScenarioOptions(sopts)};

  auto eopts = scenario.default_executor_options();
  eopts.warmup = seconds_to_micros(3);
  eopts.duration = seconds_to_micros(9);
  eopts.sample_every = seconds_to_micros(3);
  eopts.stem.backend = engine::IndexBackend::kAmri;
  const std::size_t n = scenario.query().layout(0).jas.size();
  eopts.stem.initial_config =
      index::IndexConfig(std::vector<std::uint8_t>(n, 2));
  tuner::TunerOptions topts;
  topts.reassess_every = 150;
  topts.min_improvement = 0.0;  // migrate on any cost improvement
  topts.optimizer.bit_budget = 6;
  eopts.stem.amri_tuner = topts;

  telemetry::Telemetry telemetry;
  eopts.telemetry = &telemetry;

  engine::Executor executor(scenario.query(), eopts);
  const auto source = scenario.make_source();
  const auto result = executor.run(*source);
  EXPECT_GT(result.outputs, 0u);

  std::uint64_t total_migrations = 0;
  double total_pause = 0.0;
  for (const auto& s : result.states) {
    total_migrations += s.migrations;
    total_pause += s.migration_pause_us;
    EXPECT_GT(s.state_bytes, 0u);
  }
  ASSERT_GE(total_migrations, 1u) << "scenario produced no migrations; "
                                     "the trace cannot be validated";
  EXPECT_GT(total_pause, 0.0);

  // Round-trip through the file exporter, as amri_sim --trace-out does.
  const std::string path = "trace_golden_test.jsonl";
  ASSERT_TRUE(telemetry::write_trace_file(path, telemetry));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  std::remove(path.c_str());
  ASSERT_GE(lines.size(), 3u);

  // 1. Every line is a standalone, structurally valid JSON object.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_TRUE(is_json_object_line(lines[i])) << "line " << i << ": "
                                               << lines[i];
  }

  // 2. Header first, carrying the emission totals.
  EXPECT_NE(lines[0].find("\"type\":\"trace_header\""), std::string::npos);
  EXPECT_GT(int_field(lines[0], "events_total"), 0);

  // 3. Events are time-ordered (seq order implies non-decreasing t).
  long long last_t = -1;
  std::size_t events = 0;
  for (const auto& line : lines) {
    if (line.find("\"type\":\"event\"") == std::string::npos) continue;
    ++events;
    const long long t = int_field(line, "t");
    EXPECT_GE(t, last_t) << line;
    last_t = t;
  }
  EXPECT_GT(events, 0u);

  // 4. Run framing: exactly one run_start and one run_end.
  std::size_t run_starts = 0, run_ends = 0, samples = 0;
  for (const auto& line : lines) {
    if (has_kind(line, "run_start")) ++run_starts;
    if (has_kind(line, "run_end")) ++run_ends;
    if (has_kind(line, "sample")) ++samples;
  }
  EXPECT_EQ(run_starts, 1u);
  EXPECT_EQ(run_ends, 1u);
  EXPECT_GE(samples, 2u);

  // 5. At least one complete tuner decision: assessment top-k, scored
  //    candidates, and the chosen IC all present in the payload.
  std::size_t complete_decisions = 0;
  for (const auto& line : lines) {
    if (!has_kind(line, "tuner_decision")) continue;
    if (line.find("\"top_patterns\":[") != std::string::npos &&
        line.find("\"candidates\":[") != std::string::npos &&
        line.find("\"chosen_ic\":") != std::string::npos &&
        line.find("\"assessor\":") != std::string::npos) {
      ++complete_decisions;
    }
  }
  EXPECT_GE(complete_decisions, 1u);

  // 6. Every migration_start has a matching migration_end, in order.
  std::size_t starts = 0, ends = 0;
  for (const auto& line : lines) {
    if (has_kind(line, "migration_start")) {
      ++starts;
    } else if (has_kind(line, "migration_end")) {
      ++ends;
      EXPECT_LE(ends, starts) << "migration_end before its start";
      EXPECT_NE(line.find("\"tuples_moved\":"), std::string::npos);
      EXPECT_NE(line.find("\"pause_us\":"), std::string::npos);
    }
  }
  EXPECT_GE(starts, 1u);
  EXPECT_EQ(starts, ends);

  // 7. Final metrics include the instrumented probe counters.
  std::ostringstream all;
  for (const auto& line : lines) all << line << '\n';
  const std::string text = all.str();
  EXPECT_NE(text.find("\"name\":\"eddy.decisions\""), std::string::npos);
  EXPECT_NE(text.find("probe.count"), std::string::npos);
  EXPECT_NE(text.find("migration.pause_us"), std::string::npos);
}

TEST(TraceGolden, SampleEventsCarryPerStateDetail) {
  workload::ScenarioOptions sopts;
  sopts.rate_per_sec = 30.0;
  sopts.window_seconds = 4.0;
  const workload::Scenario scenario{workload::ScenarioOptions(sopts)};

  auto eopts = scenario.default_executor_options();
  eopts.warmup = 0;
  eopts.duration = seconds_to_micros(6);
  eopts.sample_every = seconds_to_micros(2);
  eopts.stem.backend = engine::IndexBackend::kAmri;
  const std::size_t n = scenario.query().layout(0).jas.size();
  eopts.stem.initial_config =
      index::IndexConfig(std::vector<std::uint8_t>(n, 2));

  telemetry::Telemetry telemetry;
  eopts.telemetry = &telemetry;
  engine::Executor executor(scenario.query(), eopts);
  const auto source = scenario.make_source();
  const auto result = executor.run(*source);

  // RunResult samples mirror the per-state detail of the sample events.
  ASSERT_FALSE(result.samples.empty());
  for (const auto& s : result.samples) {
    ASSERT_EQ(s.states.size(), scenario.query().num_streams());
    for (StreamId st = 0; st < scenario.query().num_streams(); ++st) {
      EXPECT_EQ(s.states[st].stream, st);
      EXPECT_FALSE(s.states[st].index_config.empty());
    }
  }
  // Without telemetry the per-state vectors stay empty (zero-cost default).
  auto plain = eopts;
  plain.telemetry = nullptr;
  engine::Executor plain_exec(scenario.query(), plain);
  const auto plain_source = scenario.make_source();
  const auto plain_result = plain_exec.run(*plain_source);
  for (const auto& s : plain_result.samples) EXPECT_TRUE(s.states.empty());
}

}  // namespace
}  // namespace amri
