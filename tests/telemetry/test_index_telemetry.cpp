// The BitAddressIndex telemetry contract, focused on the bulk-load path:
// bulk_load() must feed the same instruments insert() feeds (chain-length
// histogram, occupancy-imbalance gauge) instead of leaving them empty/stale.
#include <gtest/gtest.h>

#include <vector>

#include "../test_util.hpp"
#include "index/bit_address_index.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::index {
namespace {

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

TEST(IndexTelemetry, BulkLoadFeedsChainHistogramAndImbalanceGauge) {
  telemetry::Telemetry tel;
  BitAddressIndex idx(jas3(), IndexConfig({3, 3, 2}), BitMapper::hashing(3));
  idx.bind_telemetry(&tel, "bulk.index");

  testutil::TuplePool pool(2000, 3, 40, 7);
  idx.bulk_load(pool.pointers());

  const auto* hist = tel.metrics().find_histogram("bulk.index.bucket.chain_len");
  ASSERT_NE(hist, nullptr);
  // One observation per occupied bucket, of its final chain length, so the
  // histogram sum is exactly the number of loaded tuples.
  EXPECT_EQ(hist->count(), idx.occupied_buckets());
  EXPECT_DOUBLE_EQ(hist->sum(), 2000.0);

  const auto* gauge = tel.metrics().find_gauge("bulk.index.occupancy.imbalance");
  ASSERT_NE(gauge, nullptr);
  EXPECT_GT(gauge->value(), 0.0);
  EXPECT_DOUBLE_EQ(gauge->value(), idx.occupancy().imbalance);
}

TEST(IndexTelemetry, BulkLoadMatchesInsertLoopGaugeReading) {
  testutil::TuplePool pool(500, 3, 25, 11);

  telemetry::Telemetry bulk_tel;
  BitAddressIndex bulk(jas3(), IndexConfig({2, 2, 2}), BitMapper::hashing(3));
  bulk.bind_telemetry(&bulk_tel, "idx");
  bulk.bulk_load(pool.pointers());

  telemetry::Telemetry loop_tel;
  BitAddressIndex loop(jas3(), IndexConfig({2, 2, 2}), BitMapper::hashing(3));
  loop.bind_telemetry(&loop_tel, "idx");
  for (const Tuple* t : pool.pointers()) loop.insert(t);

  // Same tuples, same IC: the final gauge readings must agree even though
  // insert() refreshes nothing (the gauge is set at structural transitions)
  // — compare against a reconfigure-driven refresh on the loop index.
  loop.reconfigure(IndexConfig({2, 2, 2}));
  const auto* bulk_gauge = bulk_tel.metrics().find_gauge("idx.occupancy.imbalance");
  const auto* loop_gauge = loop_tel.metrics().find_gauge("idx.occupancy.imbalance");
  ASSERT_NE(bulk_gauge, nullptr);
  ASSERT_NE(loop_gauge, nullptr);
  EXPECT_DOUBLE_EQ(bulk_gauge->value(), loop_gauge->value());

  // The bulk chain histogram observes each bucket once; the insert-loop
  // histogram observes every intermediate chain length. Their sums differ,
  // but both must be non-empty and the bulk count must equal the bucket
  // count exactly.
  const auto* bulk_hist = bulk_tel.metrics().find_histogram("idx.bucket.chain_len");
  const auto* loop_hist = loop_tel.metrics().find_histogram("idx.bucket.chain_len");
  ASSERT_NE(bulk_hist, nullptr);
  ASSERT_NE(loop_hist, nullptr);
  EXPECT_EQ(bulk_hist->count(), bulk.occupied_buckets());
  EXPECT_EQ(loop_hist->count(), 500u);
}

TEST(IndexTelemetry, ReconfigureRefreshesImbalanceGauge) {
  telemetry::Telemetry tel;
  BitAddressIndex idx(jas3(), IndexConfig({4, 0, 0}), BitMapper::hashing(3));
  idx.bind_telemetry(&tel, "idx");
  testutil::TuplePool pool(800, 3, 50, 13);
  idx.bulk_load(pool.pointers());
  const auto* gauge = tel.metrics().find_gauge("idx.occupancy.imbalance");
  ASSERT_NE(gauge, nullptr);
  const double before = gauge->value();
  EXPECT_DOUBLE_EQ(before, idx.occupancy().imbalance);

  idx.reconfigure(IndexConfig({2, 2, 2}));
  EXPECT_DOUBLE_EQ(gauge->value(), idx.occupancy().imbalance);
}

TEST(IndexTelemetry, DetachedBulkLoadIsSilentAndSafe) {
  BitAddressIndex idx(jas3(), IndexConfig({3, 2, 1}), BitMapper::hashing(3));
  testutil::TuplePool pool(300, 3, 30, 17);
  idx.bulk_load(pool.pointers());  // no telemetry bound: must not crash
  EXPECT_EQ(idx.size(), 300u);
  idx.check_invariants();
}

TEST(IndexTelemetry, BindNullDetachesInstruments) {
  telemetry::Telemetry tel;
  BitAddressIndex idx(jas3(), IndexConfig({3, 2, 1}), BitMapper::hashing(3));
  idx.bind_telemetry(&tel, "idx");
  idx.bind_telemetry(nullptr, "");
  testutil::TuplePool pool(100, 3, 30, 19);
  idx.bulk_load(pool.pointers());
  // The registry keeps the instruments, but nothing fed them post-detach.
  const auto* hist = tel.metrics().find_histogram("idx.bucket.chain_len");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 0u);
}

}  // namespace
}  // namespace amri::index
