// The index/state telemetry contract: bulk_load() must feed the same
// instruments insert() feeds (chain-length histogram, occupancy-imbalance
// gauge) instead of leaving them empty/stale, and the batched probe path
// must feed its own instruments — the per-state batch-size histogram
// (`stem.<s>.probe.batch_size`) and the sharded per-batch fan-out-width
// histogram (`<prefix>.probe.batch.fanout_width`).
#include <gtest/gtest.h>

#include <vector>

#include "../test_util.hpp"
#include "engine/stem.hpp"
#include "index/bit_address_index.hpp"
#include "index/sharded_bit_index.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::index {
namespace {

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

TEST(IndexTelemetry, BulkLoadFeedsChainHistogramAndImbalanceGauge) {
  telemetry::Telemetry tel;
  BitAddressIndex idx(jas3(), IndexConfig({3, 3, 2}), BitMapper::hashing(3));
  idx.bind_telemetry(&tel, "bulk.index");

  testutil::TuplePool pool(2000, 3, 40, 7);
  idx.bulk_load(pool.pointers());

  const auto* hist = tel.metrics().find_histogram("bulk.index.bucket.chain_len");
  ASSERT_NE(hist, nullptr);
  // One observation per occupied bucket, of its final chain length, so the
  // histogram sum is exactly the number of loaded tuples.
  EXPECT_EQ(hist->count(), idx.occupied_buckets());
  EXPECT_DOUBLE_EQ(hist->sum(), 2000.0);

  const auto* gauge = tel.metrics().find_gauge("bulk.index.occupancy.imbalance");
  ASSERT_NE(gauge, nullptr);
  EXPECT_GT(gauge->value(), 0.0);
  EXPECT_DOUBLE_EQ(gauge->value(), idx.occupancy().imbalance);
}

TEST(IndexTelemetry, BulkLoadMatchesInsertLoopGaugeReading) {
  testutil::TuplePool pool(500, 3, 25, 11);

  telemetry::Telemetry bulk_tel;
  BitAddressIndex bulk(jas3(), IndexConfig({2, 2, 2}), BitMapper::hashing(3));
  bulk.bind_telemetry(&bulk_tel, "idx");
  bulk.bulk_load(pool.pointers());

  telemetry::Telemetry loop_tel;
  BitAddressIndex loop(jas3(), IndexConfig({2, 2, 2}), BitMapper::hashing(3));
  loop.bind_telemetry(&loop_tel, "idx");
  for (const Tuple* t : pool.pointers()) loop.insert(t);

  // Same tuples, same IC: the final gauge readings must agree even though
  // insert() refreshes nothing (the gauge is set at structural transitions)
  // — compare against a reconfigure-driven refresh on the loop index.
  loop.reconfigure(IndexConfig({2, 2, 2}));
  const auto* bulk_gauge = bulk_tel.metrics().find_gauge("idx.occupancy.imbalance");
  const auto* loop_gauge = loop_tel.metrics().find_gauge("idx.occupancy.imbalance");
  ASSERT_NE(bulk_gauge, nullptr);
  ASSERT_NE(loop_gauge, nullptr);
  EXPECT_DOUBLE_EQ(bulk_gauge->value(), loop_gauge->value());

  // The bulk chain histogram observes each bucket once; the insert-loop
  // histogram observes every intermediate chain length. Their sums differ,
  // but both must be non-empty and the bulk count must equal the bucket
  // count exactly.
  const auto* bulk_hist = bulk_tel.metrics().find_histogram("idx.bucket.chain_len");
  const auto* loop_hist = loop_tel.metrics().find_histogram("idx.bucket.chain_len");
  ASSERT_NE(bulk_hist, nullptr);
  ASSERT_NE(loop_hist, nullptr);
  EXPECT_EQ(bulk_hist->count(), bulk.occupied_buckets());
  EXPECT_EQ(loop_hist->count(), 500u);
}

TEST(IndexTelemetry, ReconfigureRefreshesImbalanceGauge) {
  telemetry::Telemetry tel;
  BitAddressIndex idx(jas3(), IndexConfig({4, 0, 0}), BitMapper::hashing(3));
  idx.bind_telemetry(&tel, "idx");
  testutil::TuplePool pool(800, 3, 50, 13);
  idx.bulk_load(pool.pointers());
  const auto* gauge = tel.metrics().find_gauge("idx.occupancy.imbalance");
  ASSERT_NE(gauge, nullptr);
  const double before = gauge->value();
  EXPECT_DOUBLE_EQ(before, idx.occupancy().imbalance);

  idx.reconfigure(IndexConfig({2, 2, 2}));
  EXPECT_DOUBLE_EQ(gauge->value(), idx.occupancy().imbalance);
}

TEST(IndexTelemetry, DetachedBulkLoadIsSilentAndSafe) {
  BitAddressIndex idx(jas3(), IndexConfig({3, 2, 1}), BitMapper::hashing(3));
  testutil::TuplePool pool(300, 3, 30, 17);
  idx.bulk_load(pool.pointers());  // no telemetry bound: must not crash
  EXPECT_EQ(idx.size(), 300u);
  idx.check_invariants();
}

TEST(IndexTelemetry, BindNullDetachesInstruments) {
  telemetry::Telemetry tel;
  BitAddressIndex idx(jas3(), IndexConfig({3, 2, 1}), BitMapper::hashing(3));
  idx.bind_telemetry(&tel, "idx");
  idx.bind_telemetry(nullptr, "");
  testutil::TuplePool pool(100, 3, 30, 19);
  idx.bulk_load(pool.pointers());
  // The registry keeps the instruments, but nothing fed them post-detach.
  const auto* hist = tel.metrics().find_histogram("idx.bucket.chain_len");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 0u);
}

TEST(IndexTelemetry, BatchFanoutWidthHistogramCountsShardsTouched) {
  telemetry::Telemetry tel;
  ShardedBitIndex idx(jas3(), IndexConfig({2, 2, 2}), BitMapper::hashing(3),
                      /*shards=*/4, /*shard_pos=*/1);
  idx.bind_telemetry(&tel, "idx");
  testutil::TuplePool pool(400, 3, 20, 23);
  for (const Tuple* t : pool.pointers()) idx.insert(t);

  // A batch of three targeted keys (shard attribute bound): only the
  // owning shards have work, so the batch fan-out width is <= 3 and the
  // histogram gains exactly ONE observation for the whole batch.
  std::vector<ProbeKey> keys(3);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i].mask = 0b010;
    keys[i].values = {0, static_cast<Value>(i), 0};
  }
  std::vector<std::vector<const Tuple*>> outs(keys.size());
  std::vector<ProbeStats> stats(keys.size());
  idx.probe_batch(keys.data(), keys.size(), outs.data(), stats.data());

  const auto* width = tel.metrics().find_histogram(
      "idx.probe.batch.fanout_width");
  ASSERT_NE(width, nullptr);
  EXPECT_EQ(width->count(), 1u);
  EXPECT_LE(width->sum(), 3.0);
  EXPECT_GE(width->sum(), 1.0);

  // A batch containing a fan-out key (shard attribute unbound) touches
  // every shard: width == shard_count for that batch.
  ProbeKey fanout;
  fanout.mask = 0b001;
  fanout.values = {pool.at(0)->at(0), 0, 0};
  std::vector<const Tuple*> out1;
  ProbeStats st1{};
  std::vector<const Tuple*>* outp = &out1;
  idx.probe_batch(&fanout, 1, outp, &st1);
  // n == 1 delegates to the single-probe path: the *batch* histogram
  // still records the batch, with width 1-per-key semantics preserved by
  // the per-key fan-out histogram instead.
  EXPECT_EQ(width->count(), 2u);

  std::vector<ProbeKey> mixed = {keys[0], fanout};
  std::vector<std::vector<const Tuple*>> mouts(2);
  std::vector<ProbeStats> mstats(2);
  idx.probe_batch(mixed.data(), 2, mouts.data(), mstats.data());
  EXPECT_EQ(width->count(), 3u);
  // The mixed batch's fan-out key forces work onto every shard.
  EXPECT_GE(width->sum(), 1.0 + 1.0 + 4.0);
}

TEST(IndexTelemetry, StemBatchSizeHistogramRecordsKeysPerBatch) {
  telemetry::Telemetry tel;
  const engine::QuerySpec q =
      engine::make_complete_join_query(2, seconds_to_micros(1000));
  engine::StemOptions so;
  so.backend = engine::IndexBackend::kAmri;
  so.initial_config = IndexConfig({2});
  engine::StemOperator stem(0, q.layout(0), q.window(), so,
                            CostModel(WorkloadParams{}), nullptr, nullptr,
                            &tel);
  testutil::TuplePool pool(200, 1, 12, 29);
  std::vector<const Tuple*> stored;
  std::vector<Tuple> arrivals;
  for (const Tuple* t : pool.pointers()) arrivals.push_back(*t);
  stem.insert_batch(arrivals.data(), arrivals.size(), stored);

  const std::size_t n = 24;
  std::vector<ProbeKey> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i].mask = 0b1;
    keys[i].values = {static_cast<Value>(i % 12)};
  }
  std::vector<std::vector<const Tuple*>> outs(n);
  std::vector<ProbeStats> stats(n);
  stem.probe_batch(keys.data(), n, outs.data(), stats.data());

  const auto* hist = tel.metrics().find_histogram("stem.0.probe.batch_size");
  ASSERT_NE(hist, nullptr);
  // One observation per probe_batch call, of the whole batch's size (the
  // tuner-boundary chunking underneath does not re-observe).
  EXPECT_EQ(hist->count(), 1u);
  EXPECT_DOUBLE_EQ(hist->sum(), static_cast<double>(n));
  // The per-probe counter still advances once per key.
  const auto* probes = tel.metrics().find_counter("stem.0.probe.count");
  ASSERT_NE(probes, nullptr);
  EXPECT_EQ(probes->value(), n);
}

}  // namespace
}  // namespace amri::index
