#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace amri::telemetry {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(JsonWriter, BuildsNestedObjects) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "a\"b");  // embedded quote must be escaped
  w.field("n", std::uint64_t{7});
  w.field("ok", true);
  w.begin_array("xs");
  w.value(1.5);
  w.value(2.5);
  w.end_array();
  w.end_object();
  EXPECT_EQ(std::move(w).take(),
            "{\"name\":\"a\\\"b\",\"n\":7,\"ok\":true,\"xs\":[1.5,2.5]}");
}

TEST(JsonEscape, ControlCharactersAndBackslash) {
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
}

TEST(EventToJson, EmptyAndNonEmptyPayload) {
  Event e;
  e.kind = EventKind::kMigrationStart;
  e.t = 123;
  e.stream = 2;
  e.seq = 9;
  const std::string no_payload = event_to_json(e);
  EXPECT_NE(no_payload.find("\"kind\":\"migration_start\""), std::string::npos);
  EXPECT_NE(no_payload.find("\"t\":123"), std::string::npos);
  EXPECT_NE(no_payload.find("\"seq\":9"), std::string::npos);
  e.payload = "{\"tuples\":5}";
  const std::string with_payload = event_to_json(e);
  EXPECT_NE(with_payload.find("\"data\":{\"tuples\":5}"), std::string::npos);
}

TEST(WriteTraceJsonl, HeaderEventsThenMetrics) {
  Telemetry telemetry;
  telemetry.emit(EventKind::kRunStart, 0);
  telemetry.emit(EventKind::kSample, 0, "{\"outputs\":3}");
  telemetry.metrics().counter("eddy.decisions").add(12);
  telemetry.metrics().histogram("h", {1.0, 2.0}).observe(1.5);

  std::ostringstream out;
  write_trace_jsonl(out, telemetry);
  const auto lines = lines_of(out.str());
  // header + 2 events + 2 metrics
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines[0].find("\"type\":\"trace_header\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"events_total\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"run_start\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\":\"sample\""), std::string::npos);
  // Metric lines follow the events; sorted by name.
  EXPECT_NE(lines[3].find("\"name\":\"eddy.decisions\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"value\":12"), std::string::npos);
  EXPECT_NE(lines[4].find("\"kind\":\"histogram\""), std::string::npos);
  // Every line is a standalone object.
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(WriteTraceJsonl, MetricsCanBeSuppressed) {
  Telemetry telemetry;
  telemetry.emit(EventKind::kRunStart, 0);
  telemetry.metrics().counter("c").add();
  TraceWriteOptions options;
  options.include_metrics = false;
  std::ostringstream out;
  write_trace_jsonl(out, telemetry, options);
  EXPECT_EQ(lines_of(out.str()).size(), 2u);  // header + event only
}

TEST(WriteMetricsText, PrometheusShape) {
  Telemetry telemetry;
  telemetry.metrics().counter("stem.0.probe.count").add(4);
  telemetry.metrics().gauge("stem.0.assess.bytes").set(256.0);
  telemetry.metrics().histogram("lat", {1.0, 2.0}).observe(1.5);
  std::ostringstream out;
  write_metrics_text(out, telemetry.metrics());
  const std::string text = out.str();
  // Dots sanitised to underscores, amri_ prefix, TYPE comments present.
  EXPECT_NE(text.find("# TYPE amri_stem_0_probe_count counter"),
            std::string::npos);
  EXPECT_NE(text.find("amri_stem_0_probe_count 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE amri_stem_0_assess_bytes gauge"),
            std::string::npos);
  // Histogram expands to cumulative buckets plus _sum/_count.
  EXPECT_NE(text.find("amri_lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("amri_lat_count 1"), std::string::npos);
}

TEST(WriteMetricsCsv, OneRowPerScalar) {
  Telemetry telemetry;
  telemetry.metrics().counter("c").add(2);
  telemetry.metrics().histogram("h", {1.0}).observe(0.5);
  std::ostringstream out;
  write_metrics_csv(out, telemetry.metrics());
  const auto lines = lines_of(out.str());
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0], "metric,kind,field,value");
  EXPECT_NE(out.str().find("c,counter,value,2"), std::string::npos);
}

}  // namespace
}  // namespace amri::telemetry
