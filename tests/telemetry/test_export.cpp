#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json.hpp"

namespace amri::telemetry {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(JsonWriter, BuildsNestedObjects) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "a\"b");  // embedded quote must be escaped
  w.field("n", std::uint64_t{7});
  w.field("ok", true);
  w.begin_array("xs");
  w.value(1.5);
  w.value(2.5);
  w.end_array();
  w.end_object();
  EXPECT_EQ(std::move(w).take(),
            "{\"name\":\"a\\\"b\",\"n\":7,\"ok\":true,\"xs\":[1.5,2.5]}");
}

TEST(JsonEscape, ControlCharactersAndBackslash) {
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
}

TEST(EventToJson, EmptyAndNonEmptyPayload) {
  Event e;
  e.kind = EventKind::kMigrationStart;
  e.t = 123;
  e.stream = 2;
  e.seq = 9;
  const std::string no_payload = event_to_json(e);
  EXPECT_NE(no_payload.find("\"kind\":\"migration_start\""), std::string::npos);
  EXPECT_NE(no_payload.find("\"t\":123"), std::string::npos);
  EXPECT_NE(no_payload.find("\"seq\":9"), std::string::npos);
  e.payload = "{\"tuples\":5}";
  const std::string with_payload = event_to_json(e);
  EXPECT_NE(with_payload.find("\"data\":{\"tuples\":5}"), std::string::npos);
}

TEST(WriteTraceJsonl, HeaderEventsThenMetrics) {
  Telemetry telemetry;
  telemetry.emit(EventKind::kRunStart, 0);
  telemetry.emit(EventKind::kSample, 0, "{\"outputs\":3}");
  telemetry.metrics().counter("eddy.decisions").add(12);
  telemetry.metrics().histogram("h", {1.0, 2.0}).observe(1.5);

  std::ostringstream out;
  write_trace_jsonl(out, telemetry);
  const auto lines = lines_of(out.str());
  // header + 2 events + 3 metrics (the ring-overwrite counter
  // telemetry.events.dropped always exists).
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_NE(lines[0].find("\"type\":\"trace_header\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"events_total\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"run_start\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\":\"sample\""), std::string::npos);
  // Metric lines follow the events; sorted by name.
  EXPECT_NE(lines[3].find("\"name\":\"eddy.decisions\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"value\":12"), std::string::npos);
  EXPECT_NE(lines[4].find("\"name\":\"telemetry.events.dropped\""),
            std::string::npos);
  EXPECT_NE(lines[4].find("\"value\":0"), std::string::npos);
  EXPECT_NE(lines[5].find("\"kind\":\"histogram\""), std::string::npos);
  // Every line is a standalone object.
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(WriteTraceJsonl, MetricsCanBeSuppressed) {
  Telemetry telemetry;
  telemetry.emit(EventKind::kRunStart, 0);
  telemetry.metrics().counter("c").add();
  TraceWriteOptions options;
  options.include_metrics = false;
  std::ostringstream out;
  write_trace_jsonl(out, telemetry, options);
  EXPECT_EQ(lines_of(out.str()).size(), 2u);  // header + event only
}

TEST(WriteMetricsText, PrometheusShape) {
  Telemetry telemetry;
  telemetry.metrics().counter("stem.0.probe.count").add(4);
  telemetry.metrics().gauge("stem.0.assess.bytes").set(256.0);
  telemetry.metrics().histogram("lat", {1.0, 2.0}).observe(1.5);
  std::ostringstream out;
  write_metrics_text(out, telemetry.metrics());
  const std::string text = out.str();
  // Dots sanitised to underscores, amri_ prefix, TYPE comments present.
  EXPECT_NE(text.find("# TYPE amri_stem_0_probe_count counter"),
            std::string::npos);
  EXPECT_NE(text.find("amri_stem_0_probe_count 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE amri_stem_0_assess_bytes gauge"),
            std::string::npos);
  // Histogram expands to cumulative buckets plus _sum/_count.
  EXPECT_NE(text.find("amri_lat_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("amri_lat_count 1"), std::string::npos);
}

TEST(WriteMetricsText, HelpLinesCarryOriginalDottedName) {
  Telemetry telemetry;
  telemetry.metrics().counter("stem.0.probe.count").add();
  telemetry.metrics().gauge("profile.run.wall_us").set(1.0);
  telemetry.metrics().histogram("span.latency_us", {1.0}).observe(0.5);
  std::ostringstream out;
  write_metrics_text(out, telemetry.metrics());
  const std::string text = out.str();
  // Every metric gets a HELP line mapping the sanitised id back to the
  // registry's dotted name, immediately before its TYPE line.
  EXPECT_NE(text.find("# HELP amri_stem_0_probe_count stem.0.probe.count\n"
                      "# TYPE amri_stem_0_probe_count counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP amri_profile_run_wall_us profile.run.wall_us\n"
                      "# TYPE amri_profile_run_wall_us gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP amri_span_latency_us span.latency_us\n"
                      "# TYPE amri_span_latency_us histogram"),
            std::string::npos);
}

TEST(WriteMetricsText, SanitisesNonAlnumToUnderscore) {
  Telemetry telemetry;
  telemetry.metrics().counter("stem.0.ap.<A,B>.hits").add(3);
  std::ostringstream out;
  write_metrics_text(out, telemetry.metrics());
  const std::string text = out.str();
  EXPECT_NE(text.find("amri_stem_0_ap__A_B__hits 3"), std::string::npos);
  // The HELP line preserves the original spelling for reverse mapping.
  EXPECT_NE(text.find("# HELP amri_stem_0_ap__A_B__hits stem.0.ap.<A,B>.hits"),
            std::string::npos);
}

TEST(WriteMetricsText, HistogramBucketsAreCumulative) {
  Telemetry telemetry;
  auto& h = telemetry.metrics().histogram("lat", {1.0, 2.0, 4.0});
  // Values chosen exactly representable in binary so the %.17g sum
  // renders without a trailing digit tail.
  h.observe(0.5);    // bucket le=1
  h.observe(1.5);    // bucket le=2
  h.observe(1.75);   // bucket le=2
  h.observe(3.0);    // bucket le=4
  h.observe(100.0);  // overflow
  std::ostringstream out;
  write_metrics_text(out, telemetry.metrics());
  const std::string text = out.str();
  // Prometheus buckets are cumulative: each le includes all smaller ones,
  // and +Inf equals the total count.
  EXPECT_NE(text.find("amri_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("amri_lat_bucket{le=\"2\"} 3"), std::string::npos);
  EXPECT_NE(text.find("amri_lat_bucket{le=\"4\"} 4"), std::string::npos);
  EXPECT_NE(text.find("amri_lat_bucket{le=\"+Inf\"} 5"), std::string::npos);
  EXPECT_NE(text.find("amri_lat_count 5"), std::string::npos);
  EXPECT_NE(text.find("amri_lat_sum 106.75"), std::string::npos);
}

TEST(WriteMetricsCsv, OneRowPerScalar) {
  Telemetry telemetry;
  telemetry.metrics().counter("c").add(2);
  telemetry.metrics().histogram("h", {1.0}).observe(0.5);
  std::ostringstream out;
  write_metrics_csv(out, telemetry.metrics());
  const auto lines = lines_of(out.str());
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0], "metric,kind,field,value");
  EXPECT_NE(out.str().find("c,counter,value,2"), std::string::npos);
}

}  // namespace
}  // namespace amri::telemetry
