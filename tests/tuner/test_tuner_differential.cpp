// Differential tests pinning the refactored evaluator/selector tuner to
// the legacy AmriTuner behaviour:
//
//   * with guardrails unset, every applied decision must match the legacy
//     migration rule recomputed from the decision's own numbers
//     (`recommended != previous && recommended_cost <
//     current_cost * (1 - min_improvement)`);
//   * a tuner with guardrails *enabled but neutralized* (dead-band =
//     min_improvement, hysteresis = 1, horizon / budgets = infinity) must
//     reproduce the guardrails-off tuner bit-for-bit: same decisions, same
//     migrations, same final index configuration;
//   * the same equivalence end-to-end through the executor on an
//     adversarial scenario (identical outputs, migrations, and final ICs).
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "../test_util.hpp"
#include "common/rng.hpp"
#include "engine/executor.hpp"
#include "tuner/amri_tuner.hpp"
#include "workload/adversarial.hpp"

namespace amri::tuner {
namespace {

index::CostModel paper_model() {
  index::WorkloadParams p;
  p.lambda_d = 500.0;
  p.lambda_r = 500.0;
  p.window_units = 10.0;
  p.hash_cost = 1.0;
  p.compare_cost = 0.5;
  return index::CostModel(p);
}

TunerOptions fast_options() {
  TunerOptions o;
  o.assessor = assessment::AssessorKind::kCdiaHighestCount;
  o.assessor_params.epsilon = 0.01;
  o.theta = 0.1;
  o.reassess_every = 400;
  o.optimizer.bit_budget = 6;
  o.optimizer.max_bits_per_attr = 6;
  return o;
}

/// Guardrails switched on but with every production check neutralized:
/// must be behaviourally identical to guardrails-off.
GuardrailOptions neutralized(const TunerOptions& base) {
  GuardrailOptions g;
  g.enabled = true;
  g.benefit_deadband = base.min_improvement;
  g.min_epochs_between_migrations = 1;
  g.amortize_horizon_units = std::numeric_limits<double>::infinity();
  g.epoch_time_budget_us = std::numeric_limits<double>::infinity();
  g.state_memory_budget_bytes = std::numeric_limits<std::size_t>::max();
  return g;
}

TEST(TunerDifferential, LegacyRuleRecomputedFromEveryDecision) {
  TunerOptions o = fast_options();
  std::vector<TuneDecision> decisions;
  o.on_decision = [&decisions](StreamId, const TuneDecision& d) {
    decisions.push_back(d);
  };
  AmriTuner tuner(0b111, 3, paper_model(), o);
  index::BitAddressIndex idx(index::JoinAttributeSet({0, 1, 2}),
                             index::IndexConfig({2, 2, 2}),
                             index::BitMapper::hashing(3));
  testutil::TuplePool pool(200, 3, 50, 77);
  for (const Tuple* t : pool.pointers()) idx.insert(t);

  // Drifting request stream: the hot pattern moves every ~600 requests.
  Rng rng(42);
  const AttrMask hot[] = {0b001, 0b100, 0b010, 0b101, 0b110};
  for (int i = 0; i < 3000; ++i) {
    const AttrMask ap = rng.below(10) < 7
                            ? hot[i / 600]
                            : static_cast<AttrMask>(1 + rng.below(7));
    tuner.observe_request(ap);
    tuner.maybe_tune(idx);
  }

  ASSERT_GE(decisions.size(), 5u);
  for (const TuneDecision& d : decisions) {
    ASSERT_TRUE(d.due);
    const bool legacy_migrates =
        !(d.recommended == d.previous) &&
        d.recommended_cost <
            d.current_cost * (1.0 - fast_options().min_improvement);
    EXPECT_EQ(d.migrated, legacy_migrates);
    // Guardrails are unset: nothing may ever be suppressed.
    EXPECT_FALSE(d.suppressed);
  }
  EXPECT_EQ(tuner.suppressed(), 0u);
}

TEST(TunerDifferential, NeutralizedGuardrailsMatchLegacyBitForBit) {
  TunerOptions legacy_opts = fast_options();
  TunerOptions guarded_opts = fast_options();
  guarded_opts.guardrails = neutralized(guarded_opts);

  std::vector<TuneDecision> legacy_decisions;
  std::vector<TuneDecision> guarded_decisions;
  legacy_opts.on_decision = [&legacy_decisions](StreamId,
                                                const TuneDecision& d) {
    legacy_decisions.push_back(d);
  };
  guarded_opts.on_decision = [&guarded_decisions](StreamId,
                                                  const TuneDecision& d) {
    guarded_decisions.push_back(d);
  };

  AmriTuner legacy(0b111, 3, paper_model(), legacy_opts);
  AmriTuner guarded(0b111, 3, paper_model(), guarded_opts);
  index::BitAddressIndex legacy_idx(index::JoinAttributeSet({0, 1, 2}),
                                    index::IndexConfig({2, 2, 2}),
                                    index::BitMapper::hashing(3));
  index::BitAddressIndex guarded_idx(index::JoinAttributeSet({0, 1, 2}),
                                     index::IndexConfig({2, 2, 2}),
                                     index::BitMapper::hashing(3));
  testutil::TuplePool pool(200, 3, 50, 77);
  for (const Tuple* t : pool.pointers()) {
    legacy_idx.insert(t);
    guarded_idx.insert(t);
  }

  Rng rng(7);
  const AttrMask hot[] = {0b010, 0b001, 0b100, 0b011, 0b110};
  for (int i = 0; i < 3000; ++i) {
    const AttrMask ap = rng.below(10) < 7
                            ? hot[i / 600]
                            : static_cast<AttrMask>(1 + rng.below(7));
    legacy.observe_request(ap);
    guarded.observe_request(ap);
    legacy.maybe_tune(legacy_idx);
    guarded.maybe_tune(guarded_idx);
    ASSERT_EQ(legacy_idx.config(), guarded_idx.config()) << "at request " << i;
  }

  EXPECT_EQ(legacy.migrations(), guarded.migrations());
  EXPECT_EQ(guarded.suppressed(), 0u);
  ASSERT_EQ(legacy_decisions.size(), guarded_decisions.size());
  for (std::size_t i = 0; i < legacy_decisions.size(); ++i) {
    EXPECT_EQ(legacy_decisions[i].migrated, guarded_decisions[i].migrated);
    EXPECT_EQ(legacy_decisions[i].recommended,
              guarded_decisions[i].recommended);
    EXPECT_EQ(legacy_decisions[i].recommended_cost,
              guarded_decisions[i].recommended_cost);
    EXPECT_EQ(legacy_decisions[i].current_cost,
              guarded_decisions[i].current_cost);
  }
}

/// One executor run over an adversarial scenario; returns the bits the
/// differential compares.
struct E2eObserved {
  std::uint64_t outputs = 0;
  std::vector<std::uint64_t> migrations;
  std::vector<std::string> final_ics;
};

E2eObserved run_scenario_e2e(const std::string& name,
                             std::optional<GuardrailOptions> guardrails) {
  workload::AdversarialOptions aopts;
  aopts.rate_per_sec = 40.0;
  aopts.seed = 11;
  aopts.generate_seconds = 0.0;
  const auto scenario = workload::AdversarialScenario::make(name, aopts);

  auto eopts = scenario->executor_options();
  eopts.duration = seconds_to_micros(8.0);
  eopts.sample_every = seconds_to_micros(4.0);
  eopts.stem.backend = engine::IndexBackend::kAmri;
  const std::size_t n_attrs = scenario->query().layout(0).jas.size();
  std::vector<std::uint8_t> bits(n_attrs, 0);
  for (int b = 0; b < 8; ++b) ++bits[static_cast<std::size_t>(b) % n_attrs];
  eopts.stem.initial_config = index::IndexConfig(bits);
  TunerOptions topts;
  topts.reassess_every = 500;
  topts.optimizer.bit_budget = 8;
  topts.guardrails = guardrails;
  eopts.stem.amri_tuner = topts;

  engine::Executor ex(scenario->query(), eopts);
  const auto source = scenario->make_source();
  const auto r = ex.run(*source);

  E2eObserved obs;
  obs.outputs = r.outputs;
  for (const auto& st : r.states) {
    obs.migrations.push_back(st.migrations);
    obs.final_ics.push_back(st.final_index);
  }
  return obs;
}

TEST(TunerDifferential, NeutralizedGuardrailsMatchLegacyEndToEnd) {
  for (const std::string name : {"rotating_hot_set", "correlated_join"}) {
    const E2eObserved legacy = run_scenario_e2e(name, std::nullopt);
    const E2eObserved guarded = run_scenario_e2e(
        name, neutralized(TunerOptions{}));
    EXPECT_EQ(legacy.outputs, guarded.outputs) << name;
    EXPECT_EQ(legacy.migrations, guarded.migrations) << name;
    EXPECT_EQ(legacy.final_ics, guarded.final_ics) << name;
  }
}

}  // namespace
}  // namespace amri::tuner
