#include "tuner/amri_tuner.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "common/rng.hpp"

namespace amri::tuner {
namespace {

index::CostModel paper_model() {
  index::WorkloadParams p;
  p.lambda_d = 500.0;
  p.lambda_r = 500.0;
  p.window_units = 10.0;
  p.hash_cost = 1.0;
  p.compare_cost = 0.5;
  return index::CostModel(p);
}

TunerOptions fast_options() {
  TunerOptions o;
  o.assessor = assessment::AssessorKind::kCdiaHighestCount;
  o.assessor_params.epsilon = 0.01;
  o.theta = 0.1;
  o.reassess_every = 500;
  o.optimizer.bit_budget = 6;
  o.optimizer.max_bits_per_attr = 6;
  return o;
}

TEST(AmriTuner, NotDueUntilEnoughRequests) {
  AmriTuner tuner(0b111, 3, paper_model(), fast_options());
  for (int i = 0; i < 499; ++i) tuner.observe_request(0b001);
  EXPECT_FALSE(tuner.tuning_due());
  tuner.observe_request(0b001);
  EXPECT_TRUE(tuner.tuning_due());
}

TEST(AmriTuner, RecommendConcentratesBitsOnHotPattern) {
  AmriTuner tuner(0b111, 3, paper_model(), fast_options());
  for (int i = 0; i < 1000; ++i) tuner.observe_request(0b100);
  const auto d = tuner.recommend(index::IndexConfig::zero(3));
  EXPECT_TRUE(d.due);
  EXPECT_EQ(d.recommended.bits(2), 6);
  EXPECT_EQ(d.recommended.bits(0), 0);
  EXPECT_LT(d.recommended_cost, d.current_cost);
}

TEST(AmriTuner, MaybeTuneMigratesIndex) {
  index::BitAddressIndex idx(index::JoinAttributeSet({0, 1, 2}),
                             index::IndexConfig({6, 0, 0}),
                             index::BitMapper::hashing(3));
  testutil::TuplePool pool(100, 3, 50, 77);
  for (const Tuple* t : pool.pointers()) idx.insert(t);

  AmriTuner tuner(0b111, 3, paper_model(), fast_options());
  // Workload shifted entirely to attribute C.
  for (int i = 0; i < 1000; ++i) tuner.observe_request(0b100);
  const auto d = tuner.maybe_tune(idx);
  EXPECT_TRUE(d.migrated);
  EXPECT_EQ(idx.config().bits(2), 6);
  EXPECT_EQ(idx.size(), 100u);
  EXPECT_EQ(tuner.migrations(), 1u);
}

TEST(AmriTuner, NoMigrationWhenConfigAlreadyOptimal) {
  index::BitAddressIndex idx(index::JoinAttributeSet({0, 1, 2}),
                             index::IndexConfig({0, 0, 6}),
                             index::BitMapper::hashing(3));
  AmriTuner tuner(0b111, 3, paper_model(), fast_options());
  for (int i = 0; i < 1000; ++i) tuner.observe_request(0b100);
  const auto d = tuner.maybe_tune(idx);
  EXPECT_FALSE(d.migrated);
  EXPECT_EQ(idx.config(), index::IndexConfig({0, 0, 6}));
}

TEST(AmriTuner, HysteresisBlocksMarginalImprovements) {
  TunerOptions o = fast_options();
  o.min_improvement = 0.99;  // require a 99% cost reduction
  index::BitAddressIndex idx(index::JoinAttributeSet({0, 1, 2}),
                             index::IndexConfig({5, 0, 1}),
                             index::BitMapper::hashing(3));
  AmriTuner tuner(0b111, 3, paper_model(), o);
  for (int i = 0; i < 1000; ++i) tuner.observe_request(0b001);
  const auto d = tuner.maybe_tune(idx);
  EXPECT_FALSE(d.migrated);
}

TEST(AmriTuner, RetentionKeepAccumulates) {
  TunerOptions o = fast_options();
  o.retention = StatsRetention::kKeep;
  AmriTuner tuner(0b111, 3, paper_model(), o);
  for (int i = 0; i < 600; ++i) tuner.observe_request(0b010);
  tuner.recommend(index::IndexConfig::zero(3));
  EXPECT_EQ(tuner.assessor().observed(), 600u);  // nothing reset
  for (int i = 0; i < 400; ++i) tuner.observe_request(0b010);
  EXPECT_EQ(tuner.assessor().observed(), 1000u);
}

TEST(AmriTuner, RetentionDecayAges) {
  TunerOptions o = fast_options();
  o.retention = StatsRetention::kDecay;
  o.decay_factor = 0.5;
  AmriTuner tuner(0b111, 3, paper_model(), o);
  for (int i = 0; i < 600; ++i) tuner.observe_request(0b010);
  tuner.recommend(index::IndexConfig::zero(3));
  EXPECT_NEAR(static_cast<double>(tuner.assessor().observed()), 300.0, 5.0);
}

TEST(AmriTuner, RetentionDecayAdaptsFasterThanKeep) {
  // Phase flip after a long history: decay mode must recommend the new
  // hot attribute, keep mode is still dominated by the old regime.
  auto run = [&](StatsRetention retention) {
    TunerOptions o = fast_options();
    o.retention = retention;
    o.decay_factor = 0.1;
    AmriTuner tuner(0b111, 3, paper_model(), o);
    for (int i = 0; i < 5000; ++i) tuner.observe_request(0b001);
    tuner.recommend(index::IndexConfig::zero(3));  // applies retention
    // New regime: 450 requests — under keep that is 450/5450 ~ 8% < theta
    // (invisible), under decay(0.1) it is 450/950 ~ 47% (dominant).
    for (int i = 0; i < 450; ++i) tuner.observe_request(0b100);
    return tuner.recommend(index::IndexConfig::zero(3)).recommended;
  };
  EXPECT_GT(run(StatsRetention::kDecay).bits(2), 0);
  EXPECT_EQ(run(StatsRetention::kKeep).bits(2), 0);
}

TEST(AmriTuner, StatsResetAfterDecision) {
  AmriTuner tuner(0b111, 3, paper_model(), fast_options());
  for (int i = 0; i < 600; ++i) tuner.observe_request(0b010);
  tuner.recommend(index::IndexConfig::zero(3));
  EXPECT_EQ(tuner.assessor().observed(), 0u);
  EXPECT_FALSE(tuner.tuning_due());
}

TEST(AmriTuner, TracksStatisticsMemory) {
  MemoryTracker mem;
  {
    AmriTuner tuner(0b11111, 5, paper_model(), fast_options(), &mem);
    Rng rng(3);
    for (int i = 0; i < 400; ++i) {
      tuner.observe_request(static_cast<AttrMask>(rng.below(32)));
    }
    EXPECT_GT(mem.category(MemCategory::kStatistics), 0u);
  }
  EXPECT_EQ(mem.category(MemCategory::kStatistics), 0u);
}

TEST(AmriTuner, AdaptsAcrossWorkloadShift) {
  index::BitAddressIndex idx(index::JoinAttributeSet({0, 1, 2}),
                             index::IndexConfig({6, 0, 0}),
                             index::BitMapper::hashing(3));
  AmriTuner tuner(0b111, 3, paper_model(), fast_options());
  // Phase 1: all requests bind A -> stays on A.
  for (int i = 0; i < 1000; ++i) tuner.observe_request(0b001);
  tuner.maybe_tune(idx);
  EXPECT_GT(idx.config().bits(0), 0);
  // Phase 2: workload flips to B.
  for (int i = 0; i < 1000; ++i) tuner.observe_request(0b010);
  tuner.maybe_tune(idx);
  EXPECT_GT(idx.config().bits(1), 0);
  EXPECT_EQ(idx.config().bits(0), 0);
}

}  // namespace
}  // namespace amri::tuner
