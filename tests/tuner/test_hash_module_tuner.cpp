#include "tuner/hash_module_tuner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.hpp"

namespace amri::tuner {
namespace {

HashTunerOptions fast_options(std::size_t max_modules = 2) {
  HashTunerOptions o;
  o.assessor_params.epsilon = 0.01;
  o.theta = 0.1;
  o.reassess_every = 500;
  o.max_modules = max_modules;
  return o;
}

TEST(HashModuleTuner, SelectsModulesForHotPatterns) {
  index::AccessModuleSet ams(index::JoinAttributeSet({0, 1, 2}), {0b001});
  HashModuleTuner tuner(0b111, fast_options(2));
  for (int i = 0; i < 600; ++i) tuner.observe_request(0b110);
  for (int i = 0; i < 400; ++i) tuner.observe_request(0b011);
  EXPECT_TRUE(tuner.tuning_due());
  EXPECT_TRUE(tuner.maybe_tune(ams));
  auto masks = ams.module_masks();
  std::sort(masks.begin(), masks.end());
  EXPECT_EQ(masks, (std::vector<AttrMask>{0b011, 0b110}));
}

TEST(HashModuleTuner, NoChangeWhenSelectionStable) {
  index::AccessModuleSet ams(index::JoinAttributeSet({0, 1, 2}), {0b010});
  HashModuleTuner tuner(0b111, fast_options(1));
  for (int i = 0; i < 600; ++i) tuner.observe_request(0b010);
  EXPECT_FALSE(tuner.maybe_tune(ams));
  EXPECT_EQ(tuner.retunes(), 0u);
  EXPECT_EQ(tuner.decisions(), 1u);
}

TEST(HashModuleTuner, KeepsModulesWhenNoSignal) {
  index::AccessModuleSet ams(index::JoinAttributeSet({0, 1, 2}), {0b010});
  HashModuleTuner tuner(0b111, fast_options(2));
  // Only full-scan requests: nothing selectable.
  for (int i = 0; i < 600; ++i) tuner.observe_request(0);
  EXPECT_FALSE(tuner.maybe_tune(ams));
  EXPECT_EQ(ams.module_count(), 1u);
}

TEST(HashModuleTuner, CapRespected) {
  index::AccessModuleSet ams(index::JoinAttributeSet({0, 1, 2}), {});
  HashModuleTuner tuner(0b111, fast_options(2));
  // Four patterns above theta.
  for (int i = 0; i < 300; ++i) {
    tuner.observe_request(0b001);
    tuner.observe_request(0b010);
    tuner.observe_request(0b100);
    tuner.observe_request(0b111);
  }
  tuner.maybe_tune(ams);
  EXPECT_LE(ams.module_count(), 2u);
}

TEST(HashModuleTuner, RebuiltModulesServeProbes) {
  index::AccessModuleSet ams(index::JoinAttributeSet({0, 1, 2}), {0b001});
  testutil::TuplePool pool(50, 3, 8, 91);
  for (const Tuple* t : pool.pointers()) ams.insert(t);
  HashModuleTuner tuner(0b111, fast_options(1));
  for (int i = 0; i < 600; ++i) tuner.observe_request(0b100);
  ASSERT_TRUE(tuner.maybe_tune(ams));
  index::ProbeKey k;
  k.mask = 0b100;
  k.values = {0, 0, pool.at(0)->at(2)};
  std::vector<const Tuple*> out;
  ams.probe(k, out);
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(ams.scan_fallbacks(), 0u);  // served by the new module
}

}  // namespace
}  // namespace amri::tuner
