// Property tests for the guardrail selector (tuner/selector.hpp): 10,000
// randomized snapshot sequences — random evaluations, random contexts,
// random guardrail settings — checked against the selector's invariants
// after every decision:
//
//   * a migration never fires below the benefit dead-band;
//   * two migrations of one state never land within the hysteresis
//     window;
//   * a fired migration always amortizes within the horizon, fits the
//     memory budget, and is covered by the time-budget bucket (which
//     never goes negative);
//   * `suppressed` counts exactly the guardrail-blocked verdicts
//     (hysteresis / not-amortized / budgets), never dead-band rejections;
//   * with guardrails disabled the selector is the legacy migration rule.
#include "tuner/selector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"

namespace amri::tuner {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

index::IndexConfig random_ic(Rng& rng, std::size_t num_attrs, int budget) {
  std::vector<std::uint8_t> bits(num_attrs, 0);
  const int total = static_cast<int>(rng.below(budget + 1));
  for (int i = 0; i < total; ++i) {
    ++bits[rng.below(num_attrs)];
  }
  return index::IndexConfig(bits);
}

GuardrailOptions random_guardrails(Rng& rng) {
  GuardrailOptions g;
  g.enabled = rng.below(4) != 0;  // mostly on; some pure-legacy sequences
  g.benefit_deadband = 0.3 * rng.uniform01();
  g.min_epochs_between_migrations = 1 + rng.below(8);
  g.amortize_horizon_units = rng.below(2) != 0 ? 1e9 : 50.0 * rng.uniform01();
  g.epoch_time_budget_us = rng.below(2) != 0 ? kInf : 200.0 * rng.uniform01();
  g.burst_epochs = 1.0 + static_cast<double>(rng.below(8));
  g.state_memory_budget_bytes =
      rng.below(2) != 0 ? std::numeric_limits<std::size_t>::max()
                        : 1024 + rng.below(1 << 16);
  return g;
}

Evaluation random_evaluation(Rng& rng, std::size_t num_attrs, int budget) {
  Evaluation e;
  e.best = random_ic(rng, num_attrs, budget);
  e.current_cost = 1.0 + 5000.0 * rng.uniform01();
  // Half the draws are improvements, half regressions/noise near zero.
  e.best_cost = e.current_cost * (rng.below(2) != 0 ? rng.uniform01()
                                                    : 0.9 + rng.uniform01());
  e.configs_evaluated = 1 + rng.below(32);
  return e;
}

bool is_suppressed_verdict(GuardrailVerdict v) {
  return v == GuardrailVerdict::kHysteresis ||
         v == GuardrailVerdict::kNotAmortized ||
         v == GuardrailVerdict::kTimeBudget ||
         v == GuardrailVerdict::kMemoryBudget;
}

TEST(SelectorGuardrailsProperty, InvariantsHoldOverRandomizedSequences) {
  constexpr int kSequences = 10000;
  constexpr int kEpochsPerSequence = 10;
  constexpr std::size_t kNumAttrs = 3;
  constexpr int kBitBudget = 8;
  constexpr double kHashCost = 1.0;
  Rng rng(0xd1ce);

  std::uint64_t fired_total = 0;
  std::uint64_t suppressed_total = 0;
  for (int seq = 0; seq < kSequences; ++seq) {
    const GuardrailOptions g = random_guardrails(rng);
    GuardrailSelector selector(g, kHashCost);
    std::uint64_t last_fire_epoch = 0;
    bool fired_once = false;
    std::uint64_t suppressed_before = 0;

    for (int epoch = 0; epoch < kEpochsPerSequence; ++epoch) {
      const Evaluation eval = random_evaluation(rng, kNumAttrs, kBitBudget);
      const index::IndexConfig current =
          random_ic(rng, kNumAttrs, kBitBudget);
      WhatIfContext ctx;
      ctx.stored_tuples = rng.below(500);
      ctx.state_bytes = rng.below(1 << 17);

      const Selection s = selector.select(eval, current, ctx);

      // The selector's epoch clock ticks exactly once per select().
      ASSERT_EQ(selector.epoch(), static_cast<std::uint64_t>(epoch + 1));

      if (s.migrate) {
        ASSERT_EQ(s.verdict, GuardrailVerdict::kFired);
        // Never migrates to the current IC.
        ASSERT_FALSE(eval.best == current);
        // Never migrates below the dead-band.
        ASSERT_LT(eval.best_cost,
                  eval.current_cost * (1.0 - g.benefit_deadband));
        if (g.enabled) {
          // Never two migrations within the hysteresis window.
          if (fired_once) {
            ASSERT_GE(selector.epoch() - last_fire_epoch,
                      g.min_epochs_between_migrations);
          }
          // A fired migration amortizes within the horizon...
          ASSERT_LE(s.amortize_units, g.amortize_horizon_units);
          // ...and was covered by the token bucket.
          ASSERT_GE(s.budget_remaining_us, 0.0);
        }
        fired_once = true;
        last_fire_epoch = selector.epoch();
        ++fired_total;
      } else {
        ASSERT_NE(s.verdict, GuardrailVerdict::kFired);
      }

      // `suppressed` counts exactly the guardrail-blocked verdicts.
      const std::uint64_t delta = selector.suppressed() - suppressed_before;
      ASSERT_EQ(delta, is_suppressed_verdict(s.verdict) ? 1u : 0u)
          << verdict_name(s.verdict);
      suppressed_before = selector.suppressed();

      // Guardrail verdicts require guardrails.
      if (!g.enabled) {
        ASSERT_FALSE(is_suppressed_verdict(s.verdict));
        // Disabled selector == the legacy migration rule, exactly.
        const bool legacy_migrates =
            !(eval.best == current) &&
            eval.best_cost < eval.current_cost * (1.0 - g.benefit_deadband);
        ASSERT_EQ(s.migrate, legacy_migrates);
      }

      // The bucket never goes negative and spend only grows.
      ASSERT_GE(s.budget_remaining_us, 0.0);
      ASSERT_GE(s.budget_spent_us, 0.0);
    }
    suppressed_total += selector.suppressed();
  }
  // The randomization must actually exercise both outcomes.
  EXPECT_GT(fired_total, 0u);
  EXPECT_GT(suppressed_total, 0u);
}

TEST(SelectorGuardrails, HysteresisSpacingIsExact) {
  GuardrailOptions g;
  g.enabled = true;
  g.benefit_deadband = 0.02;
  g.min_epochs_between_migrations = 4;
  g.amortize_horizon_units = kInf;
  g.epoch_time_budget_us = kInf;
  GuardrailSelector selector(g, 1.0);

  // Every epoch proposes the same large improvement away from `current`.
  Evaluation eval;
  eval.best = index::IndexConfig({0, 0, 8});
  eval.best_cost = 10.0;
  eval.current_cost = 100.0;
  const index::IndexConfig current({8, 0, 0});
  WhatIfContext ctx;
  ctx.stored_tuples = 100;

  std::vector<std::uint64_t> fire_epochs;
  for (int i = 0; i < 20; ++i) {
    if (selector.select(eval, current, ctx).migrate) {
      fire_epochs.push_back(selector.epoch());
    }
  }
  ASSERT_EQ(fire_epochs.size(), 5u);  // epochs 1, 5, 9, 13, 17
  for (std::size_t i = 1; i < fire_epochs.size(); ++i) {
    EXPECT_EQ(fire_epochs[i] - fire_epochs[i - 1], 4u);
  }
}

TEST(SelectorGuardrails, TimeBudgetRefillsAtTheConfiguredRate) {
  GuardrailOptions g;
  g.enabled = true;
  g.benefit_deadband = 0.02;
  g.min_epochs_between_migrations = 1;
  g.amortize_horizon_units = kInf;
  g.epoch_time_budget_us = 10.0;
  g.burst_epochs = 10.0;  // bucket starts (and caps) at 100 µs
  GuardrailSelector selector(g, 1.0);

  Evaluation eval;
  eval.best = index::IndexConfig({0, 8, 0});
  eval.best_cost = 10.0;
  eval.current_cost = 100.0;
  const index::IndexConfig current({8, 0, 0});
  WhatIfContext ctx;
  ctx.stored_tuples = 90;  // what-if cost 90 µs per migration

  // Epoch 1: bucket 100+10 capped at 100 -> fires, leaves 10.
  EXPECT_TRUE(selector.select(eval, current, ctx).migrate);
  // Epochs 2..8: 10 µs accrual each reaches 20..80, under 90 -> suppressed.
  for (int i = 0; i < 7; ++i) {
    const Selection s = selector.select(eval, current, ctx);
    EXPECT_EQ(s.verdict, GuardrailVerdict::kTimeBudget);
  }
  // Epoch 9: bucket back to exactly 90 -> fires again.
  EXPECT_TRUE(selector.select(eval, current, ctx).migrate);
  EXPECT_EQ(selector.suppressed(), 7u);
}

TEST(SelectorGuardrails, MemoryBudgetBlocksDirectoryGrowth) {
  GuardrailOptions g;
  g.enabled = true;
  g.benefit_deadband = 0.02;
  g.min_epochs_between_migrations = 1;
  g.amortize_horizon_units = kInf;
  g.epoch_time_budget_us = kInf;
  g.state_memory_budget_bytes = 20000;
  GuardrailSelector selector(g, 1.0);

  Evaluation eval;
  eval.best = index::IndexConfig({0, 8, 0});  // 256 buckets -> 16 KiB dir
  eval.best_cost = 10.0;
  eval.current_cost = 100.0;
  const index::IndexConfig current({2, 0, 0});  // 4 buckets
  WhatIfContext ctx;
  ctx.stored_tuples = 10;

  ctx.state_bytes = 1000;  // 1000 + ~16 KiB growth fits under 20000
  EXPECT_TRUE(selector.select(eval, current, ctx).migrate);
  ctx.state_bytes = 10000;  // growth would cross the budget
  const Selection s = selector.select(eval, current, ctx);
  EXPECT_EQ(s.verdict, GuardrailVerdict::kMemoryBudget);
  EXPECT_FALSE(s.migrate);
}

}  // namespace
}  // namespace amri::tuner
