#include "workload/scenario.hpp"

#include <gtest/gtest.h>

namespace amri::workload {
namespace {

TEST(Scenario, PaperShapeDefaults) {
  Scenario sc(ScenarioOptions{});
  EXPECT_EQ(sc.query().num_streams(), 4u);
  EXPECT_EQ(sc.query().predicates().size(), 6u);
  for (StreamId s = 0; s < 4; ++s) {
    // 3 join attributes -> 7 possible non-empty access patterns (paper §V).
    EXPECT_EQ(sc.query().layout(s).jas.size(), 3u);
  }
  EXPECT_EQ(sc.schedule().num_phases(), ScenarioOptions{}.num_phases);
}

TEST(Scenario, SourceProducesInterleavedStreams) {
  ScenarioOptions o;
  o.generate_seconds = 5.0;
  o.rate_per_sec = 40.0;
  Scenario sc(o);
  const auto src = sc.make_source();
  std::vector<int> counts(4, 0);
  while (const auto t = src->next()) ++counts[t->stream];
  for (const int c : counts) EXPECT_NEAR(c, 200, 40);
}

TEST(Scenario, SeedOffsetChangesData) {
  ScenarioOptions o;
  o.generate_seconds = 2.0;
  Scenario sc(o);
  const auto a = sc.make_source(0);
  const auto b = sc.make_source(1);
  int diffs = 0;
  while (true) {
    const auto ta = a->next();
    const auto tb = b->next();
    if (!ta || !tb) break;
    if (ta->ts != tb->ts || !(ta->values == tb->values)) ++diffs;
  }
  EXPECT_GT(diffs, 10);
}

TEST(Scenario, DefaultExecutorOptionsMirrorWorkload) {
  ScenarioOptions o;
  o.rate_per_sec = 80.0;
  o.window_seconds = 15.0;
  Scenario sc(o);
  const auto eopts = sc.default_executor_options();
  EXPECT_DOUBLE_EQ(eopts.model_params.lambda_d, 80.0);
  EXPECT_DOUBLE_EQ(eopts.model_params.lambda_r, 320.0);
  EXPECT_DOUBLE_EQ(eopts.model_params.window_units, 15.0);
  EXPECT_DOUBLE_EQ(eopts.model_params.hash_cost, eopts.costs.hash_cost_us);
}

TEST(Scenario, EndToEndSmokeRun) {
  // A short full-pipeline run: the scenario must produce join results.
  ScenarioOptions o;
  o.rate_per_sec = 40.0;
  o.window_seconds = 5.0;
  o.phase_seconds = 10.0;
  o.hot_domain = 8;
  o.cold_domain = 25;
  Scenario sc(o);
  auto eopts = sc.default_executor_options();
  eopts.duration = seconds_to_micros(20);
  eopts.stem.backend = engine::IndexBackend::kAmri;
  eopts.stem.initial_config = index::IndexConfig({2, 2, 2});
  engine::Executor ex(sc.query(), eopts);
  const auto src = sc.make_source();
  const auto result = ex.run(*src);
  EXPECT_GT(result.outputs, 0u);
  EXPECT_GT(result.arrivals, 0u);
}

}  // namespace
}  // namespace amri::workload
