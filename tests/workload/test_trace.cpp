#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "engine/executor.hpp"
#include "workload/scenario.hpp"

namespace amri::workload {
namespace {

Scenario small_scenario() {
  ScenarioOptions o;
  o.rate_per_sec = 30.0;
  o.window_seconds = 5.0;
  o.generate_seconds = 6.0;
  o.seed = 77;
  return Scenario(o);
}

TEST(Trace, RecorderForwardsUnchanged) {
  const auto sc = small_scenario();
  const auto direct = sc.make_source();
  const auto inner = sc.make_source();
  TraceRecorder rec(*inner);
  while (true) {
    const auto a = direct->next();
    const auto b = rec.next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    EXPECT_EQ(a->ts, b->ts);
    EXPECT_EQ(a->values, b->values);
  }
  EXPECT_GT(rec.trace().size(), 100u);
}

TEST(Trace, SaveLoadRoundTrip) {
  const auto sc = small_scenario();
  const auto inner = sc.make_source();
  TraceRecorder rec(*inner);
  while (rec.next()) {
  }
  std::stringstream buffer;
  rec.save(buffer);
  auto replay = TraceReplaySource::load(buffer);
  ASSERT_EQ(replay.size(), rec.trace().size());
  std::size_t i = 0;
  while (const auto t = replay.next()) {
    const Tuple& orig = rec.trace()[i++];
    EXPECT_EQ(t->stream, orig.stream);
    EXPECT_EQ(t->ts, orig.ts);
    EXPECT_EQ(t->seq, orig.seq);
    EXPECT_EQ(t->values, orig.values);
  }
  EXPECT_EQ(i, replay.size());
}

TEST(Trace, ReplayDrivesExecutorIdentically) {
  const auto sc = small_scenario();
  engine::ExecutorOptions opts = sc.default_executor_options();
  opts.duration = seconds_to_micros(100);
  opts.stem.backend = engine::IndexBackend::kAmri;
  opts.stem.initial_config = index::IndexConfig({2, 2, 2});

  const auto live = sc.make_source();
  TraceRecorder rec(*live);
  engine::Executor ex1(sc.query(), opts);
  const auto r1 = ex1.run(rec);

  std::stringstream buffer;
  rec.save(buffer);
  auto replay = TraceReplaySource::load(buffer);
  engine::Executor ex2(sc.query(), opts);
  const auto r2 = ex2.run(replay);

  EXPECT_EQ(r1.outputs, r2.outputs);
  EXPECT_EQ(r1.arrivals, r2.arrivals);
  EXPECT_EQ(r1.charged_us, r2.charged_us);
}

TEST(Trace, RewindReplaysAgain) {
  TraceReplaySource src({Tuple{}, Tuple{}});
  EXPECT_TRUE(src.next().has_value());
  EXPECT_TRUE(src.next().has_value());
  EXPECT_FALSE(src.next().has_value());
  src.rewind();
  EXPECT_TRUE(src.next().has_value());
}

TEST(Trace, CommentsAndBlankLinesIgnored) {
  std::stringstream is(
      "AMRITRACE 1\n"
      "# a comment\n"
      "\n"
      "0 100 0 2 5 6\n"
      "1 200 1 1 9  # trailing comment\n");
  auto replay = TraceReplaySource::load(is);
  ASSERT_EQ(replay.size(), 2u);
  const auto t0 = replay.next();
  EXPECT_EQ(t0->stream, 0u);
  EXPECT_EQ(t0->ts, 100);
  ASSERT_EQ(t0->values.size(), 2u);
  EXPECT_EQ(t0->values[1], 6);
  const auto t1 = replay.next();
  EXPECT_EQ(t1->values[0], 9);
}

TEST(Trace, MalformedInputsThrow) {
  {
    std::stringstream is("NOPE 1\n");
    EXPECT_THROW(TraceReplaySource::load(is), std::invalid_argument);
  }
  {
    std::stringstream is("AMRITRACE 2\n");
    EXPECT_THROW(TraceReplaySource::load(is), std::invalid_argument);
  }
  {
    std::stringstream is("AMRITRACE 1\n0 100 0 3 1 2\n");  // truncated
    EXPECT_THROW(TraceReplaySource::load(is), std::invalid_argument);
  }
  {
    std::stringstream is("AMRITRACE 1\nnot numbers here\n");
    EXPECT_THROW(TraceReplaySource::load(is), std::invalid_argument);
  }
  {
    std::stringstream is("AMRITRACE 1\n0 200 0 1 1\n0 100 1 1 1\n");
    EXPECT_THROW(TraceReplaySource::load(is), std::invalid_argument);
  }
}

TEST(Trace, FileRoundTrip) {
  const std::string path = "/tmp/amri_trace_test.txt";
  const auto sc = small_scenario();
  const auto inner = sc.make_source();
  TraceRecorder rec(*inner);
  for (int i = 0; i < 10; ++i) rec.next();
  rec.save_file(path);
  auto replay = TraceReplaySource::load_file(path);
  EXPECT_EQ(replay.size(), 10u);
  EXPECT_THROW(TraceReplaySource::load_file("/nonexistent/trace"),
               std::invalid_argument);
}

}  // namespace
}  // namespace amri::workload
