#include "workload/synthetic_generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace amri::workload {
namespace {

engine::QuerySpec query4() {
  return engine::make_complete_join_query(4, seconds_to_micros(10));
}

GeneratorOptions opts4(double rate, double seconds, std::uint64_t seed = 1) {
  GeneratorOptions o;
  o.rates_per_sec.assign(4, rate);
  o.end = seconds_to_micros(seconds);
  o.seed = seed;
  return o;
}

TEST(SyntheticGenerator, TimestampsNonDecreasing) {
  const auto q = query4();
  SyntheticGenerator gen(q, PhaseSchedule::rotating(6, 2, seconds_to_micros(5), 10, 50),
                         opts4(100, 10));
  TimeMicros prev = 0;
  int count = 0;
  while (const auto t = gen.next()) {
    EXPECT_GE(t->ts, prev);
    prev = t->ts;
    ++count;
  }
  EXPECT_GT(count, 0);
}

TEST(SyntheticGenerator, RespectsEndTime) {
  const auto q = query4();
  SyntheticGenerator gen(q, PhaseSchedule::rotating(6, 1, 1000, 10, 50),
                         opts4(50, 2));
  while (const auto t = gen.next()) {
    EXPECT_LT(t->ts, seconds_to_micros(2));
  }
}

TEST(SyntheticGenerator, ApproximatesConfiguredRates) {
  const auto q = query4();
  SyntheticGenerator gen(q, PhaseSchedule::rotating(6, 1, 1000, 10, 50),
                         opts4(100, 20));
  std::map<StreamId, int> counts;
  while (const auto t = gen.next()) ++counts[t->stream];
  // 100/s for 20s = ~2000 per stream (jitter gives a few % slack).
  for (StreamId s = 0; s < 4; ++s) {
    EXPECT_NEAR(counts[s], 2000, 200) << "stream " << s;
  }
}

TEST(SyntheticGenerator, TupleShapeMatchesSchema) {
  const auto q = query4();
  SyntheticGenerator gen(q, PhaseSchedule::rotating(6, 1, 1000, 10, 50),
                         opts4(10, 5));
  while (const auto t = gen.next()) {
    EXPECT_LT(t->stream, 4u);
    EXPECT_EQ(t->values.size(), q.schema(t->stream).num_attrs());
  }
}

TEST(SyntheticGenerator, ValuesRespectPhaseDomains) {
  const auto q = query4();
  // Phase 0 (t < 5s): predicate 0 domain 4, others 40.
  // Phase 1 (t >= 5s): predicate 1 domain 4, others 40.
  SyntheticGenerator gen(
      q, PhaseSchedule::rotating(6, 2, seconds_to_micros(5), 4, 40),
      opts4(200, 10));
  // Predicate 0 is streams 0-1 (attr 0 on both, by construction).
  while (const auto t = gen.next()) {
    const bool phase0 = t->ts < seconds_to_micros(5);
    if (t->stream == 0 || t->stream == 1) {
      const Value v = t->at(0);  // the 0-1 join attribute
      if (phase0) {
        EXPECT_LT(v, 4);
      } else {
        EXPECT_LT(v, 40);
      }
    }
    for (const Value v : t->values) EXPECT_LT(v, 100);
  }
}

TEST(SyntheticGenerator, DeterministicForSeed) {
  const auto q = query4();
  const auto sched = PhaseSchedule::rotating(6, 2, seconds_to_micros(5), 10, 50);
  SyntheticGenerator g1(q, sched, opts4(50, 5, 42));
  SyntheticGenerator g2(q, sched, opts4(50, 5, 42));
  while (true) {
    const auto t1 = g1.next();
    const auto t2 = g2.next();
    ASSERT_EQ(t1.has_value(), t2.has_value());
    if (!t1) break;
    EXPECT_EQ(t1->stream, t2->stream);
    EXPECT_EQ(t1->ts, t2->ts);
    EXPECT_EQ(t1->values, t2->values);
  }
}

TEST(SyntheticGenerator, SequenceNumbersUnique) {
  const auto q = query4();
  SyntheticGenerator gen(q, PhaseSchedule::rotating(6, 1, 1000, 10, 50),
                         opts4(50, 3));
  TupleSeq expected = 0;
  while (const auto t = gen.next()) {
    EXPECT_EQ(t->seq, expected++);
  }
  EXPECT_EQ(gen.produced(), expected);
}

}  // namespace
}  // namespace amri::workload
