#include "workload/distributions.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace amri::workload {
namespace {

TEST(UniformDistribution, InRangeAndRoughlyFlat) {
  UniformDistribution d(10);
  Rng rng(1);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const Value v = d.sample(rng);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 10);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(ZipfDistribution, InRange) {
  ZipfDistribution d(100, 1.0);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const Value v = d.sample(rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(ZipfDistribution, SkewConcentratesOnLowRanks) {
  ZipfDistribution d(1000, 1.2);
  Rng rng(3);
  std::map<Value, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[d.sample(rng)];
  // Rank 0 must dominate and the top-10 must hold the majority of mass.
  EXPECT_GT(counts[0], counts[5]);
  int top10 = 0;
  for (Value v = 0; v < 10; ++v) top10 += counts[v];
  EXPECT_GT(top10, n / 2);
}

TEST(ZipfDistribution, ZeroExponentIsUniform) {
  ZipfDistribution d(20, 0.0);
  Rng rng(4);
  std::vector<int> counts(20, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(d.sample(rng))];
  for (const int c : counts) EXPECT_NEAR(c, n / 20, n / 200);
}

TEST(ZipfDistribution, SingletonDomain) {
  ZipfDistribution d(1, 2.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 0);
}

TEST(Factories, ProduceCorrectTypes) {
  const auto u = make_uniform(5);
  const auto z = make_zipf(5, 1.0);
  EXPECT_EQ(u->domain(), 5);
  EXPECT_EQ(z->domain(), 5);
  Rng rng(6);
  EXPECT_LT(u->sample(rng), 5);
  EXPECT_LT(z->sample(rng), 5);
}

}  // namespace
}  // namespace amri::workload
