// Golden tests for the adversarial scenario library: every named scenario
// is a pure function of (options, seed). Pinned here per scenario:
//
//   * an FNV-1a digest over the first tuples of its source (stream, ts,
//     seq, values) — any change to generation order, value draws, or
//     delivery re-ordering shows up as a digest mismatch;
//   * the total migration count and per-state final index configurations
//     of a short guardrailed executor run — the end-to-end fingerprint of
//     scenario + assessment + guardrailed tuning.
//
// The pins keep the committed BENCH trajectory comparable across PRs: a
// deliberate workload change must update them (and the bench entry)
// consciously.
#include "workload/adversarial.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/executor.hpp"
#include "engine/multi_query.hpp"
#include "tuner/amri_tuner.hpp"

namespace amri::workload {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

std::uint64_t stream_digest(const AdversarialScenario& scenario,
                            std::size_t tuples,
                            std::uint64_t seed_offset = 0) {
  auto source = scenario.make_source(seed_offset);
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < tuples; ++i) {
    const auto t = source->next();
    if (!t.has_value()) break;
    fnv_mix(h, t->stream);
    fnv_mix(h, static_cast<std::uint64_t>(t->ts));
    fnv_mix(h, t->seq);
    for (const Value v : t->values) {
      fnv_mix(h, static_cast<std::uint64_t>(v));
    }
  }
  return h;
}

AdversarialOptions golden_options() {
  AdversarialOptions o;
  o.rate_per_sec = 40.0;
  o.seed = 11;
  o.generate_seconds = 0.0;
  return o;
}

struct EngineFingerprint {
  std::uint64_t migrations = 0;
  std::string final_ics;  // per-state final index strings, '|'-joined
};

EngineFingerprint engine_fingerprint(const AdversarialScenario& scenario) {
  auto eopts = scenario.executor_options();
  eopts.duration = seconds_to_micros(6.0);
  eopts.sample_every = seconds_to_micros(3.0);
  eopts.stem.backend = engine::IndexBackend::kAmri;
  const std::size_t n_attrs = scenario.query().layout(0).jas.size();
  std::vector<std::uint8_t> bits(n_attrs, 0);
  for (int b = 0; b < 8; ++b) ++bits[static_cast<std::size_t>(b) % n_attrs];
  eopts.stem.initial_config = index::IndexConfig(bits);
  tuner::TunerOptions topts;
  topts.reassess_every = 500;
  topts.optimizer.bit_budget = 8;
  tuner::GuardrailOptions g;
  g.enabled = true;
  topts.guardrails = g;
  eopts.stem.amri_tuner = topts;

  engine::Executor ex(scenario.query(), eopts);
  const auto source = scenario.make_source();
  const auto r = ex.run(*source);
  EngineFingerprint fp;
  for (const auto& st : r.states) {
    fp.migrations += st.migrations;
    if (!fp.final_ics.empty()) fp.final_ics += "|";
    fp.final_ics += st.final_index;
  }
  return fp;
}

struct Golden {
  const char* name;
  std::uint64_t digest;       // stream_digest over the first 2000 tuples
  std::uint64_t migrations;   // engine_fingerprint
  const char* final_ics;
};

// Pinned under golden_options() — regenerate by running this test and
// copying the reported actuals when a workload change is intentional.
constexpr Golden kGolden[] = {
    {"rotating_hot_set", 0xbbb7c801cfe0411fULL, 4,
     "bit_address[A:0 B:5 C:3]|bit_address[A:0 B:5 C:3]|"
     "bit_address[A:0 B:4 C:4]|bit_address[A:3 B:5 C:0]"},
    {"bursty_diurnal", 0x55d778ec50cdd02bULL, 4,
     "bit_address[A:8 B:0 C:0]|bit_address[A:0 B:5 C:3]|"
     "bit_address[A:3 B:0 C:5]|bit_address[A:1 B:4 C:3]"},
    {"correlated_join", 0xadb50ad678d86ca1ULL, 4,
     "bit_address[A:0 B:5 C:3]|bit_address[A:0 B:4 C:4]|"
     "bit_address[A:0 B:0 C:8]|bit_address[A:4 B:4 C:0]"},
    {"out_of_order", 0x1c9a44e5f587e4efULL, 3,
     "bit_address[A:0 B:5 C:3]|bit_address[A:0 B:5 C:3]|"
     "bit_address[A:3 B:3 C:2]|bit_address[A:4 B:4 C:0]"},
    {"many_way", 0x03dd2bc24755f55cULL, 5,
     "bit_address[A:0 B:2 C:3 D:1 E:2]|bit_address[A:0 B:3 C:3 D:2 E:0]|"
     "bit_address[A:3 B:3 C:2 D:0 E:0]|bit_address[A:3 B:0 C:2 D:2 E:1]|"
     "bit_address[A:2 B:2 C:2 D:1 E:1]|bit_address[A:3 B:3 C:2 D:0 E:0]"},
    {"oom_cliff", 0xd7f6365c6e80750aULL, 4,
     "bit_address[A:4 B:4 C:0]|bit_address[A:0 B:5 C:3]|"
     "bit_address[A:4 B:4 C:0]|bit_address[A:4 B:4 C:0]"},
    // Two shared states (union of 3 overlapping templates, 4 attributes);
    // the 6 s golden run stays below the first reassessment epoch, so the
    // pinned fingerprint is the evenly spread initial configuration.
    {"multi_query", 0x31fbdda6ab099fcdULL, 0,
     "bit_address[A:2 B:2 C:2 D:2]|bit_address[A:2 B:2 C:2 D:2]"},
};

TEST(AdversarialScenarios, NamesMatchGoldenTableAndUnknownThrows) {
  const auto& names = AdversarialScenario::names();
  ASSERT_EQ(names.size(), std::size(kGolden));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], kGolden[i].name);
  }
  EXPECT_THROW(AdversarialScenario::make("no_such_scenario"),
               std::invalid_argument);
}

TEST(AdversarialScenarios, StreamDigestsArePinned) {
  for (const Golden& g : kGolden) {
    const auto scenario = AdversarialScenario::make(g.name, golden_options());
    const std::uint64_t d = stream_digest(*scenario, 2000);
    EXPECT_EQ(d, g.digest) << g.name << " digest 0x" << std::hex << d;
    // Same seed reproduces; a different seed offset decorrelates.
    EXPECT_EQ(stream_digest(*scenario, 2000), d) << g.name;
    EXPECT_NE(stream_digest(*scenario, 2000, 1), d) << g.name;
  }
}

TEST(AdversarialScenarios, EngineFingerprintsArePinned) {
  for (const Golden& g : kGolden) {
    const auto scenario = AdversarialScenario::make(g.name, golden_options());
    const EngineFingerprint fp = engine_fingerprint(*scenario);
    EXPECT_EQ(fp.migrations, g.migrations) << g.name;
    EXPECT_EQ(fp.final_ics, g.final_ics) << g.name << " ics " << fp.final_ics;
  }
}

TEST(AdversarialScenarios, OutOfOrderDeliveryIsTimestampMonotone) {
  const auto scenario =
      AdversarialScenario::make("out_of_order", golden_options());
  auto source = scenario->make_source();
  TimeMicros last = 0;
  std::uint64_t last_seq = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto t = source->next();
    ASSERT_TRUE(t.has_value());
    // The engine requires non-decreasing delivery timestamps and strictly
    // increasing sequence numbers even though generation was reordered.
    ASSERT_GE(t->ts, last);
    if (i > 0) ASSERT_GT(t->seq, last_seq);
    last = t->ts;
    last_seq = t->seq;
  }
}

TEST(AdversarialScenarios, MultiQueryTemplatesOverlap) {
  AdversarialOptions o = golden_options();
  o.num_queries = 4;
  const auto scenario = AdversarialScenario::make("multi_query", o);
  // Query i joins attributes {i, i+1}: 4 templates over 5 shared
  // attributes, every neighbouring pair sharing exactly one.
  const auto& queries = scenario->queries();
  ASSERT_EQ(queries.size(), 4u);
  EXPECT_EQ(scenario->query().layout(0).jas.size(), 5u);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& preds = queries[qi].predicates();
    ASSERT_EQ(preds.size(), 2u);
    EXPECT_EQ(preds[0].left_attr, static_cast<AttrId>(qi));
    EXPECT_EQ(preds[1].left_attr, static_cast<AttrId>(qi + 1));
  }
  // Every other scenario exposes its single query through queries().
  const auto single =
      AdversarialScenario::make("rotating_hot_set", golden_options());
  ASSERT_EQ(single->queries().size(), 1u);
  EXPECT_EQ(single->queries()[0].predicates().size(),
            single->query().predicates().size());

  // The bundle drives a shared-state multi-query run end to end.
  auto eopts = scenario->executor_options();
  eopts.duration = seconds_to_micros(4.0);
  engine::MultiQueryExecutor ex(queries, eopts);
  const auto source = scenario->make_source();
  const auto r = ex.run(*source);
  EXPECT_EQ(r.per_query_outputs.size(), queries.size());
}

TEST(AdversarialScenarios, DiurnalModulationChangesBurstyDigest) {
  // bursty_diurnal with the diurnal term switched off must generate a
  // different stream: the modulation is live, not dead configuration.
  AdversarialOptions flat = golden_options();
  flat.diurnal_amplitude = 0.0;
  const auto modulated =
      AdversarialScenario::make("bursty_diurnal", golden_options());
  const auto unmodulated = AdversarialScenario::make("bursty_diurnal", flat);
  EXPECT_NE(stream_digest(*modulated, 2000), stream_digest(*unmodulated, 2000));
}

}  // namespace
}  // namespace amri::workload
