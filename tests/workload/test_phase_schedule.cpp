#include "workload/phase_schedule.hpp"

#include <gtest/gtest.h>

namespace amri::workload {
namespace {

TEST(PhaseSchedule, PhaseIndexAtBoundaries) {
  PhaseSchedule sched({{0, {10}}, {100, {20}}, {200, {30}}});
  EXPECT_EQ(sched.phase_index_at(0), 0u);
  EXPECT_EQ(sched.phase_index_at(99), 0u);
  EXPECT_EQ(sched.phase_index_at(100), 1u);
  EXPECT_EQ(sched.phase_index_at(150), 1u);
  EXPECT_EQ(sched.phase_index_at(200), 2u);
  EXPECT_EQ(sched.phase_index_at(10000), 2u);  // clamps to last
}

TEST(PhaseSchedule, DomainAt) {
  PhaseSchedule sched({{0, {10, 50}}, {100, {20, 60}}});
  EXPECT_EQ(sched.domain_at(0, 0), 10);
  EXPECT_EQ(sched.domain_at(0, 1), 50);
  EXPECT_EQ(sched.domain_at(150, 0), 20);
  EXPECT_EQ(sched.domain_at(150, 1), 60);
}

TEST(PhaseSchedule, RotatingHotPredicate) {
  const auto sched = PhaseSchedule::rotating(3, 6, 100, 5, 50);
  EXPECT_EQ(sched.num_phases(), 6u);
  for (std::size_t k = 0; k < 6; ++k) {
    const Phase& ph = sched.phase(k);
    EXPECT_EQ(ph.start, static_cast<TimeMicros>(k) * 100);
    ASSERT_EQ(ph.predicate_domains.size(), 3u);
    for (std::size_t p = 0; p < 3; ++p) {
      EXPECT_EQ(ph.predicate_domains[p], p == k % 3 ? 5 : 50);
    }
  }
}

TEST(PhaseSchedule, RotatingWrapsHotIndex) {
  const auto sched = PhaseSchedule::rotating(2, 5, 10, 1, 9);
  EXPECT_EQ(sched.phase(0).predicate_domains[0], 1);
  EXPECT_EQ(sched.phase(1).predicate_domains[1], 1);
  EXPECT_EQ(sched.phase(2).predicate_domains[0], 1);  // wrapped
  EXPECT_EQ(sched.phase(4).predicate_domains[0], 1);
}

TEST(PhaseSchedule, SinglePhaseConstant) {
  const auto sched = PhaseSchedule::rotating(4, 1, 1000, 3, 30);
  EXPECT_EQ(sched.domain_at(0, 0), 3);
  EXPECT_EQ(sched.domain_at(999999, 0), 3);
  EXPECT_EQ(sched.domain_at(0, 1), 30);
}

}  // namespace
}  // namespace amri::workload
