#include "workload/bursty_source.hpp"

#include <gtest/gtest.h>

#include <map>

#include "engine/executor.hpp"

namespace amri::workload {
namespace {

engine::QuerySpec query4() {
  return engine::make_complete_join_query(4, seconds_to_micros(10));
}

BurstyOptions opts(double rate, double seconds, std::uint64_t seed = 1) {
  BurstyOptions o;
  o.base_rates_per_sec.assign(4, rate);
  o.end = seconds_to_micros(seconds);
  o.seed = seed;
  return o;
}

PhaseSchedule sched() {
  return PhaseSchedule::rotating(6, 4, seconds_to_micros(10), 10, 50);
}

TEST(BurstySource, TimestampsNonDecreasingAndBounded) {
  const auto q = query4();
  BurstySource src(q, sched(), opts(50, 30));
  TimeMicros prev = 0;
  int count = 0;
  while (const auto t = src.next()) {
    EXPECT_GE(t->ts, prev);
    EXPECT_LT(t->ts, seconds_to_micros(30));
    prev = t->ts;
    ++count;
  }
  EXPECT_GT(count, 100);
}

TEST(BurstySource, EntersAndLeavesBursts) {
  const auto q = query4();
  BurstyOptions o = opts(50, 120, 7);
  o.mean_calm_seconds = 5.0;
  o.mean_burst_seconds = 3.0;
  BurstySource src(q, sched(), o);
  while (src.next()) {
  }
  EXPECT_GE(src.bursts_entered(), 3u);
}

TEST(BurstySource, BurstsRaiseShortTermRate) {
  const auto q = query4();
  BurstyOptions o = opts(100, 200, 11);
  o.burst_multiplier = 6.0;
  o.mean_calm_seconds = 10.0;
  o.mean_burst_seconds = 10.0;
  BurstySource src(q, sched(), o);
  // Count arrivals per second; the busiest second should far exceed the
  // calm baseline of ~400/s across streams.
  std::map<TimeMicros, int> per_second;
  while (const auto t = src.next()) {
    ++per_second[t->ts / 1000000];
  }
  int max_rate = 0;
  int min_rate = 1 << 30;
  for (const auto& [sec, n] : per_second) {
    (void)sec;
    max_rate = std::max(max_rate, n);
    min_rate = std::min(min_rate, n);
  }
  EXPECT_GT(max_rate, min_rate * 2);
}

TEST(BurstySource, ValuesRespectDomainsAndSkew) {
  const auto q = query4();
  BurstyOptions o = opts(100, 60, 13);
  o.zipf_exponent = 1.5;
  BurstySource src(q, sched(), o);
  std::map<Value, int> histogram;
  while (const auto t = src.next()) {
    for (const Value v : t->values) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
    histogram[t->at(0)] += 1;
  }
  // Skew: low values dominate.
  int low = 0;
  int high = 0;
  for (const auto& [v, n] : histogram) {
    if (v < 10) low += n;
    else if (v >= 40) high += n;
  }
  EXPECT_GT(low, high);
}

TEST(BurstySource, DeterministicForSeed) {
  const auto q = query4();
  BurstySource a(q, sched(), opts(50, 10, 42));
  BurstySource b(q, sched(), opts(50, 10, 42));
  while (true) {
    const auto ta = a.next();
    const auto tb = b.next();
    ASSERT_EQ(ta.has_value(), tb.has_value());
    if (!ta) break;
    EXPECT_EQ(ta->ts, tb->ts);
    EXPECT_EQ(ta->stream, tb->stream);
    EXPECT_EQ(ta->values, tb->values);
  }
}

TEST(BurstySource, DrivesTheFullEngine) {
  const auto q = query4();
  BurstyOptions o = opts(40, 0, 17);
  o.end = 0;  // unbounded; executor bounds the run
  BurstySource src(q, sched(), o);
  engine::ExecutorOptions eopts;
  eopts.duration = seconds_to_micros(20);
  eopts.stem.backend = engine::IndexBackend::kAmri;
  eopts.stem.initial_config = index::IndexConfig({2, 2, 2});
  engine::Executor ex(q, eopts);
  const auto r = ex.run(src);
  EXPECT_GT(r.arrivals, 0u);
}

}  // namespace
}  // namespace amri::workload
