#include "workload/request_generator.hpp"

#include <gtest/gtest.h>

#include <map>

namespace amri::workload {
namespace {

TEST(RequestGenerator, HotPatternDominatesItsPhase) {
  RequestPhase ph;
  ph.length = 10000;
  ph.hot.push_back({0b011, 0.7});
  RequestGenerator gen(0b111, {ph}, 3);
  std::map<AttrMask, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[gen.next()];
  EXPECT_GT(counts[0b011], 6500);
}

TEST(RequestGenerator, PatternsWithinUniverse) {
  RequestPhase ph;
  ph.length = 1000;
  ph.hot.push_back({0b101, 0.5});
  RequestGenerator gen(0b111, {ph}, 4);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(is_subset(gen.next(), 0b111u));
  }
}

TEST(RequestGenerator, PhasesAdvanceAndWrap) {
  RequestPhase p1;
  p1.length = 100;
  p1.hot.push_back({0b001, 1.0});
  RequestPhase p2;
  p2.length = 100;
  p2.hot.push_back({0b100, 1.0});
  RequestGenerator gen(0b111, {p1, p2}, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.next(), 0b001u);
  EXPECT_EQ(gen.current_phase(), 1u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.next(), 0b100u);
  EXPECT_EQ(gen.current_phase(), 0u);  // wrapped
  EXPECT_EQ(gen.next(), 0b001u);
}

TEST(RequestGenerator, RotatingFactoryShiftsHotAttribute) {
  auto gen = RequestGenerator::rotating(3, 3, 5000, 0.8, 6);
  std::map<AttrMask, int> phase0;
  for (int i = 0; i < 5000; ++i) ++phase0[gen.next()];
  std::map<AttrMask, int> phase1;
  for (int i = 0; i < 5000; ++i) ++phase1[gen.next()];
  // Phase 0 hot single-attr pattern is bit 0; phase 1's is bit 1.
  EXPECT_GT(phase0[0b001], phase0[0b010]);
  EXPECT_GT(phase1[0b010], phase1[0b001]);
}

TEST(RequestGenerator, CountsProduced) {
  auto gen = RequestGenerator::rotating(4, 2, 10, 0.5, 7);
  for (int i = 0; i < 25; ++i) gen.next();
  EXPECT_EQ(gen.produced(), 25u);
}

}  // namespace
}  // namespace amri::workload
