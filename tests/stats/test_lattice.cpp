#include "stats/lattice.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace amri::stats {
namespace {

TEST(Lattice, BasicShape) {
  Lattice l(0b111);
  EXPECT_EQ(l.num_attrs(), 3);
  EXPECT_EQ(l.height(), 4);
  EXPECT_EQ(l.node_count(), 8u);
}

TEST(Lattice, LevelIsPopcount) {
  EXPECT_EQ(Lattice::level(0), 0);
  EXPECT_EQ(Lattice::level(0b101), 2);
  EXPECT_EQ(Lattice::level(0b111), 3);
}

TEST(Lattice, BenefitsIsSubsetRelation) {
  // <A,*,*> benefits <A,B,*>: an index on A narrows an A,B-bound probe.
  EXPECT_TRUE(Lattice::benefits(0b001, 0b011));
  EXPECT_TRUE(Lattice::benefits(0, 0b111));      // full scan benefits all
  EXPECT_TRUE(Lattice::benefits(0b011, 0b011));  // reflexive
  EXPECT_FALSE(Lattice::benefits(0b100, 0b011));
}

TEST(Lattice, ParentsRemoveOneAttribute) {
  Lattice l(0b111);
  const auto p = l.parents(0b101);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_NE(std::find(p.begin(), p.end(), 0b100u), p.end());
  EXPECT_NE(std::find(p.begin(), p.end(), 0b001u), p.end());
}

TEST(Lattice, TopHasNoParents) {
  Lattice l(0b111);
  EXPECT_TRUE(l.parents(0).empty());
}

TEST(Lattice, ChildrenAddOneAttribute) {
  Lattice l(0b111);
  const auto c = l.children(0b001);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_NE(std::find(c.begin(), c.end(), 0b011u), c.end());
  EXPECT_NE(std::find(c.begin(), c.end(), 0b101u), c.end());
}

TEST(Lattice, BottomHasNoChildren) {
  Lattice l(0b111);
  EXPECT_TRUE(l.children(0b111).empty());
}

TEST(Lattice, ParentChildConsistency) {
  // For every node and every parent: node is among the parent's children.
  Lattice l(0b1111);
  for (const AttrMask node : l.all_nodes_top_down()) {
    for (const AttrMask parent : l.parents(node)) {
      const auto kids = l.children(parent);
      EXPECT_NE(std::find(kids.begin(), kids.end(), node), kids.end());
      EXPECT_TRUE(Lattice::benefits(parent, node));
    }
  }
}

TEST(Lattice, AllNodesTopDownOrderedByLevel) {
  Lattice l(0b111);
  const auto nodes = l.all_nodes_top_down();
  ASSERT_EQ(nodes.size(), 8u);
  EXPECT_EQ(nodes.front(), 0u);
  EXPECT_EQ(nodes.back(), 0b111u);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LE(Lattice::level(nodes[i - 1]), Lattice::level(nodes[i]));
  }
}

TEST(PartialLattice, LeafDetection) {
  PartialLattice pl(0b111);
  pl.counts().add(0b001);
  pl.counts().add(0b011);
  pl.counts().add(0b100);
  // 0b011 is a leaf (no superset node); 0b001 is not (0b011 ⊇ 0b001).
  EXPECT_TRUE(pl.is_leaf(0b011));
  EXPECT_FALSE(pl.is_leaf(0b001));
  EXPECT_TRUE(pl.is_leaf(0b100));
}

TEST(PartialLattice, LeavesSortedDeepestFirst) {
  PartialLattice pl(0b111);
  pl.counts().add(0b001);
  pl.counts().add(0b110);
  pl.counts().add(0b010);
  const auto leaves = pl.leaves();
  ASSERT_EQ(leaves.size(), 2u);  // 0b110 and 0b001 (0b010 covered by 0b110)
  EXPECT_EQ(leaves[0], 0b110u);
  EXPECT_EQ(leaves[1], 0b001u);
}

TEST(PartialLattice, NodesBottomUpCoversAll) {
  PartialLattice pl(0b111);
  pl.counts().add(0);
  pl.counts().add(0b111);
  pl.counts().add(0b010);
  const auto nodes = pl.nodes_bottom_up();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], 0b111u);
  EXPECT_EQ(nodes[2], 0u);
}

TEST(PartialLattice, SingleNodeIsLeaf) {
  PartialLattice pl(0b11);
  pl.counts().add(0);
  EXPECT_TRUE(pl.is_leaf(0));
}

}  // namespace
}  // namespace amri::stats
