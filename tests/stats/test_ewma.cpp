#include "stats/ewma.hpp"

#include <gtest/gtest.h>

namespace amri::stats {
namespace {

TEST(Ewma, FirstSampleSetsValue) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ValueOrFallback) {
  Ewma e;
  EXPECT_DOUBLE_EQ(e.value_or(7.0), 7.0);
  e.add(1.0);
  EXPECT_DOUBLE_EQ(e.value_or(7.0), 1.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) e.add(5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-9);
}

TEST(Ewma, SmoothsStep) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, AlphaOneTracksExactly) {
  Ewma e(1.0);
  e.add(3.0);
  e.add(9.0);
  EXPECT_DOUBLE_EQ(e.value(), 9.0);
}

TEST(Ewma, CountsSamplesAndResets) {
  Ewma e(0.2);
  e.add(1.0);
  e.add(2.0);
  EXPECT_EQ(e.samples(), 2u);
  e.reset();
  EXPECT_FALSE(e.initialized());
  EXPECT_EQ(e.samples(), 0u);
}

}  // namespace
}  // namespace amri::stats
