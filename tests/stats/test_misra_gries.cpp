#include "stats/misra_gries.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"

namespace amri::stats {
namespace {

TEST(MisraGries, TracksWithinCapacityExactly) {
  MisraGries<int> mg(10);
  for (int i = 0; i < 5; ++i) {
    for (int rep = 0; rep <= i; ++rep) mg.observe(i);
  }
  EXPECT_EQ(mg.estimate(0), 1u);
  EXPECT_EQ(mg.estimate(4), 5u);
}

TEST(MisraGries, NeverOvercounts) {
  MisraGries<std::uint32_t> mg(8);
  std::map<std::uint32_t, std::uint64_t> truth;
  amri::Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const auto k = static_cast<std::uint32_t>(rng.below(100));
    ++truth[k];
    mg.observe(k);
  }
  for (const auto& [k, c] : truth) EXPECT_LE(mg.estimate(k), c);
}

TEST(MisraGries, UndercountBoundedByNOverKPlus1) {
  const std::size_t k = 9;
  MisraGries<std::uint32_t> mg(k);
  std::map<std::uint32_t, std::uint64_t> truth;
  amri::Rng rng(6);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const auto key = static_cast<std::uint32_t>(
        rng.uniform01() < 0.5 ? rng.below(3) : rng.below(1000));
    ++truth[key];
    mg.observe(key);
  }
  const double bound = static_cast<double>(n) / (k + 1);
  for (const auto& [key, c] : truth) {
    EXPECT_GE(static_cast<double>(mg.estimate(key)),
              static_cast<double>(c) - bound - 1);
  }
}

TEST(MisraGries, MajorityElementSurvives) {
  MisraGries<int> mg(1);
  for (int i = 0; i < 100; ++i) {
    mg.observe(7);
    if (i % 2 == 0) mg.observe(i + 1000);
  }
  EXPECT_GT(mg.estimate(7), 0u);
}

TEST(MisraGries, SizeNeverExceedsCapacity) {
  MisraGries<int> mg(5);
  amri::Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    mg.observe(static_cast<int>(rng.below(500)));
    EXPECT_LE(mg.size(), 5u);
  }
}

TEST(MisraGries, CandidatesSorted) {
  MisraGries<int> mg(10);
  for (int i = 0; i < 30; ++i) mg.observe(1);
  for (int i = 0; i < 10; ++i) mg.observe(2);
  const auto c = mg.candidates();
  ASSERT_GE(c.size(), 2u);
  EXPECT_EQ(c[0].key, 1);
  EXPECT_GE(c[0].count, c[1].count);
}

}  // namespace
}  // namespace amri::stats
