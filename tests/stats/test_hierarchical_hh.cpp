#include "stats/hierarchical_hh.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.hpp"

namespace amri::stats {
namespace {

TEST(HierarchicalHH, ObserveCountsExactlyBeforeCompression) {
  HierarchicalHeavyHitter hhh(0b111, 0.01, CombinePolicy::kHighestCount);
  for (int i = 0; i < 50; ++i) hhh.observe(0b101);
  EXPECT_EQ(hhh.observed(), 50u);
  EXPECT_EQ(hhh.total_mass(), 50u);
}

// The core CDIA invariant: compression combines counts into parents rather
// than deleting them, so no observation mass is ever lost.
TEST(HierarchicalHH, MassConservationUnderCompression) {
  for (const auto policy :
       {CombinePolicy::kRandom, CombinePolicy::kHighestCount}) {
    HierarchicalHeavyHitter hhh(0b1111, 0.01, policy, 7);
    amri::Rng rng(99);
    for (int i = 0; i < 25000; ++i) {
      hhh.observe(static_cast<AttrMask>(rng.below(16)));
    }
    EXPECT_EQ(hhh.total_mass(), 25000u)
        << "policy=" << static_cast<int>(policy);
  }
}

TEST(HierarchicalHH, FrequentPatternAlwaysReported) {
  HierarchicalHeavyHitter hhh(0b111, 0.005, CombinePolicy::kHighestCount);
  amri::Rng rng(42);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (rng.uniform01() < 0.5) {
      hhh.observe(0b011);  // hot pattern, ~50%
    } else {
      hhh.observe(static_cast<AttrMask>(rng.below(8)));
    }
  }
  const auto res = hhh.results(0.1);
  bool found = false;
  for (const auto& r : res) {
    if (r.mask == 0b011) found = true;
  }
  EXPECT_TRUE(found);
}

// The paper's Table II / Figure 5 workload. With the *highest-count*
// policy the sub-threshold <A,B,*> (4%) rolls into its larger parent
// <*,B,*> (10% -> 14%); with the *random* policy it lands in one of its
// two parents — when it lands in <A,*,*> the combined 8% clears theta and
// the A attribute's mass survives (the paper's worked outcome). Either
// way everything reported clears the threshold.
TEST(HierarchicalHH, TableTwoWorkloadRollup) {
  // Masks (JAS position 0 = A): <A,*,*> = 0b001, <A,B,*> = 0b011, etc.
  const std::map<AttrMask, int> workload = {
      {0b001, 40},   // <A,*,*> 4%
      {0b010, 100},  // <*,B,*> 10%
      {0b100, 100},  // <*,*,C> 10%
      {0b011, 40},   // <A,B,*> 4%
      {0b101, 160},  // <A,*,C> 16%
      {0b110, 100},  // <*,B,C> 10%
      {0b111, 460},  // <A,B,C> 46%
  };
  // Fine epsilon: compression never fires mid-stream, rollup happens in
  // results() only, making the outcome fully deterministic.
  HierarchicalHeavyHitter hc(0b111, 0.0001, CombinePolicy::kHighestCount);
  for (const auto& [mask, count] : workload) {
    for (int i = 0; i < count; ++i) hc.observe(mask);
  }
  EXPECT_EQ(hc.observed(), 1000u);
  const auto res = hc.results(0.05);
  bool b_reported = false;
  for (const auto& r : res) {
    EXPECT_GE(r.frequency, 0.05);  // everything reported clears theta
    if (r.mask == 0b010) {
      b_reported = true;
      EXPECT_EQ(r.count, 140u);  // 100 + the 40 of <A,B,*>
    }
  }
  EXPECT_TRUE(b_reported);

  // Random policy: <A,B,*>'s mass must end up under either parent; find a
  // seed where it lands in <A,*,*> (the paper's illustrated case).
  bool paper_case_seen = false;
  for (std::uint64_t seed = 0; seed < 32 && !paper_case_seen; ++seed) {
    HierarchicalHeavyHitter rnd(0b111, 0.0001, CombinePolicy::kRandom, seed);
    for (const auto& [mask, count] : workload) {
      for (int i = 0; i < count; ++i) rnd.observe(mask);
    }
    for (const auto& r : rnd.results(0.05)) {
      if (r.mask == 0b001 && r.count == 80u) paper_case_seen = true;
    }
  }
  EXPECT_TRUE(paper_case_seen)
      << "no seed produced the paper's <A,B,*> -> <A,*,*> combination";
}

TEST(HierarchicalHH, ResultsRollupConservesReportableMass) {
  HierarchicalHeavyHitter hhh(0b111, 0.001, CombinePolicy::kRandom, 3);
  amri::Rng rng(55);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    hhh.observe(static_cast<AttrMask>(rng.below(8)));
  }
  // With theta=0 every node is reported; mass must equal n exactly.
  const auto res = hhh.results(0.0);
  std::uint64_t sum = 0;
  for (const auto& r : res) sum += r.count;
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n));
}

TEST(HierarchicalHH, MemoryBoundedUnderManyPatterns) {
  // 2^10 = 1024 possible patterns, epsilon 1% -> table must stay well
  // below the full pattern space.
  HierarchicalHeavyHitter hhh(0b1111111111, 0.01,
                              CombinePolicy::kHighestCount);
  amri::Rng rng(77);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hhh.observe(static_cast<AttrMask>(rng.below(1024)));
  }
  // Cormode bound: (h/eps) * log(eps*n); h = 11 levels here.
  const double bound = (11 / 0.01) * std::log(0.01 * n);
  EXPECT_LE(hhh.size(), static_cast<std::size_t>(bound));
  EXPECT_LT(hhh.size(), 1024u);
}

TEST(HierarchicalHH, TopNodeNeverCompressed) {
  HierarchicalHeavyHitter hhh(0b11, 0.5, CombinePolicy::kHighestCount);
  // Segment width 2: compression fires every 2 observations.
  hhh.observe(0);
  hhh.observe(0);
  hhh.observe(0);
  hhh.observe(0);
  EXPECT_EQ(hhh.total_mass(), 4u);
  EXPECT_GE(hhh.size(), 1u);
}

TEST(HierarchicalHH, PoliciesDifferButBothConserve) {
  amri::Rng rng(101);
  std::vector<AttrMask> workload;
  for (int i = 0; i < 20000; ++i) {
    workload.push_back(static_cast<AttrMask>(rng.below(32)));
  }
  HierarchicalHeavyHitter random_hhh(0b11111, 0.01, CombinePolicy::kRandom, 1);
  HierarchicalHeavyHitter hc_hhh(0b11111, 0.01, CombinePolicy::kHighestCount, 1);
  for (const AttrMask m : workload) {
    random_hhh.observe(m);
    hc_hhh.observe(m);
  }
  EXPECT_EQ(random_hhh.total_mass(), 20000u);
  EXPECT_EQ(hc_hhh.total_mass(), 20000u);
}

TEST(HierarchicalHH, ClearResets) {
  HierarchicalHeavyHitter hhh(0b111, 0.01, CombinePolicy::kRandom);
  hhh.observe(0b001);
  hhh.clear();
  EXPECT_EQ(hhh.observed(), 0u);
  EXPECT_EQ(hhh.size(), 0u);
  EXPECT_TRUE(hhh.results(0.0).empty());
}

}  // namespace
}  // namespace amri::stats
