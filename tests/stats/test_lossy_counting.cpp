#include "stats/lossy_counting.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace amri::stats {
namespace {

TEST(LossyCounting, SegmentWidthIsCeilOfInverseEpsilon) {
  EXPECT_EQ(LossyCounting<int>(0.1).segment_width(), 10u);
  EXPECT_EQ(LossyCounting<int>(0.001).segment_width(), 1000u);
  EXPECT_EQ(LossyCounting<int>(0.3).segment_width(), 4u);  // ceil(3.33)
}

TEST(LossyCounting, ExactWhenEverythingFrequent) {
  LossyCounting<int> lc(0.1);
  for (int i = 0; i < 100; ++i) lc.observe(i % 2);
  EXPECT_EQ(lc.estimate(0), 50u);
  EXPECT_EQ(lc.estimate(1), 50u);
}

TEST(LossyCounting, EvictsRareKeys) {
  LossyCounting<int> lc(0.05);  // segment width 20
  // Key 999 appears once at the start, then a flood of other keys.
  lc.observe(999);
  for (int i = 0; i < 2000; ++i) lc.observe(i % 3);
  EXPECT_EQ(lc.estimate(999), 0u);  // evicted
  EXPECT_GT(lc.estimate(0), 0u);
}

TEST(LossyCounting, NeverOvercounts) {
  LossyCounting<std::uint32_t> lc(0.01);
  std::map<std::uint32_t, std::uint64_t> truth;
  amri::Rng rng(17);
  for (int i = 0; i < 50000; ++i) {
    const auto k = static_cast<std::uint32_t>(rng.below(50));
    ++truth[k];
    lc.observe(k);
  }
  for (const auto& [k, true_count] : truth) {
    EXPECT_LE(lc.estimate(k), true_count);
  }
}

TEST(LossyCounting, UndercountBoundedByEpsilonN) {
  const double eps = 0.01;
  LossyCounting<std::uint32_t> lc(eps);
  std::map<std::uint32_t, std::uint64_t> truth;
  amri::Rng rng(23);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    // Zipf-ish skew via squaring.
    const auto k = static_cast<std::uint32_t>(rng.below(40) * rng.below(40) / 40);
    ++truth[k];
    lc.observe(k);
  }
  for (const auto& [k, true_count] : truth) {
    const auto est = lc.estimate(k);
    EXPECT_LE(est, true_count);
    if (est > 0) {
      EXPECT_GE(static_cast<double>(est),
                static_cast<double>(true_count) - eps * n);
    }
  }
}

// The central guarantee: no key with true frequency >= theta is missed.
TEST(LossyCounting, NoFalseNegativesAtThreshold) {
  const double eps = 0.005;
  const double theta = 0.05;
  LossyCounting<std::uint32_t> lc(eps);
  std::map<std::uint32_t, std::uint64_t> truth;
  amri::Rng rng(31);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    // 5 hot keys (~15% each), long tail of cold keys.
    std::uint32_t k;
    if (rng.uniform01() < 0.75) {
      k = static_cast<std::uint32_t>(rng.below(5));
    } else {
      k = 100 + static_cast<std::uint32_t>(rng.below(5000));
    }
    ++truth[k];
    lc.observe(k);
  }
  std::set<std::uint32_t> reported;
  for (const auto& item : lc.results(theta)) reported.insert(item.key);
  for (const auto& [k, c] : truth) {
    if (static_cast<double>(c) / n >= theta) {
      EXPECT_TRUE(reported.count(k)) << "missed hot key " << k;
    }
  }
}

// Dual guarantee: nothing with true frequency < theta - eps is reported.
TEST(LossyCounting, NoFalsePositivesBelowThetaMinusEps) {
  const double eps = 0.01;
  const double theta = 0.1;
  LossyCounting<std::uint32_t> lc(eps);
  std::map<std::uint32_t, std::uint64_t> truth;
  amri::Rng rng(37);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto k = static_cast<std::uint32_t>(rng.below(30));
    ++truth[k];
    lc.observe(k);
  }
  for (const auto& item : lc.results(theta)) {
    const double true_f = static_cast<double>(truth[item.key]) / n;
    EXPECT_GE(true_f, theta - eps);
  }
}

TEST(LossyCounting, MemoryBoundedUnderUniformFlood) {
  const double eps = 0.01;
  LossyCounting<std::uint64_t> lc(eps);
  amri::Rng rng(41);
  const int n = 200000;
  for (int i = 0; i < n; ++i) lc.observe(rng.below(1u << 20));
  // Theoretical bound: (1/eps) * log(eps * n) = 100 * ln(2000) ~ 760.
  EXPECT_LE(lc.size(), static_cast<std::size_t>(
                           (1.0 / eps) * std::log(eps * n) + 100));
}

TEST(LossyCounting, ResultsSortedByCountDescending) {
  LossyCounting<int> lc(0.1);
  for (int i = 0; i < 60; ++i) lc.observe(1);
  for (int i = 0; i < 30; ++i) lc.observe(2);
  for (int i = 0; i < 10; ++i) lc.observe(3);
  const auto res = lc.results(0.05);
  ASSERT_GE(res.size(), 2u);
  EXPECT_EQ(res[0].key, 1);
  EXPECT_EQ(res[1].key, 2);
}

TEST(LossyCounting, ClearResets) {
  LossyCounting<int> lc(0.1);
  lc.observe(1);
  lc.clear();
  EXPECT_EQ(lc.observed(), 0u);
  EXPECT_EQ(lc.size(), 0u);
  EXPECT_EQ(lc.estimate(1), 0u);
}

// Regression for the weighted-observe compression trigger. The old code
// compressed only when `observed_ % segment_width_ == 0`; a weighted stream
// whose running total jumps *past* segment boundaries without landing on
// one therefore never compressed, and the table grew without bound. With a
// width of 10, a one-unit offset followed by weight-2 updates keeps the
// total permanently odd — the modulo never fires, while the fixed
// before/after segment-id comparison fires on every boundary crossing.
TEST(LossyCounting, WeightedStreamSkippingBoundariesStillCompresses) {
  LossyCounting<int> lc(0.1);
  ASSERT_EQ(lc.segment_width(), 10u);
  lc.observe(-1, 1);
  for (int i = 0; i < 1000; ++i) lc.observe(i, 2);
  // Each weight-2 distinct key survives roughly two segments past its
  // insertion; the live table stays near the Manku–Motwani bound. The
  // broken trigger retained all 1001 entries.
  EXPECT_LE(lc.size(), 100u);
  EXPECT_EQ(lc.observed(), 2001u);
  lc.check_invariants();
}

TEST(LossyCounting, WeightJumpingMultipleSegmentsCompresses) {
  LossyCounting<int> lc(0.25);  // segment width 4
  // weight 7 crosses one or two boundaries per observation and is never a
  // multiple of the width, so the old trigger was silent here too.
  for (int i = 0; i < 200; ++i) lc.observe(i, 7);
  EXPECT_LE(lc.size(), 30u);
  lc.check_invariants();
}

TEST(LossyCounting, WeightedEstimatesNeverOvercount) {
  LossyCounting<std::uint32_t> lc(0.02);
  std::map<std::uint32_t, std::uint64_t> truth;
  amri::Rng rng(53);
  for (int i = 0; i < 20000; ++i) {
    const auto k = static_cast<std::uint32_t>(rng.below(200));
    const std::uint64_t w = 1 + rng.below(5);
    truth[k] += w;
    lc.observe(k, w);
  }
  for (const auto& [k, true_count] : truth) {
    EXPECT_LE(lc.estimate(k), true_count);
  }
  lc.check_invariants();
}

TEST(LossyCounting, InvariantsHoldAcrossCompressions) {
  LossyCounting<int> lc(0.01);
  for (int i = 0; i < 50000; ++i) {
    lc.observe(i % 317);
    if (i % 7000 == 0) lc.check_invariants();
  }
  lc.check_invariants();
}

}  // namespace
}  // namespace amri::stats
