#include "stats/space_saving.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"

namespace amri::stats {
namespace {

TEST(SpaceSaving, ExactWithinCapacity) {
  SpaceSaving<int> ss(10);
  for (int i = 0; i < 3; ++i) {
    for (int rep = 0; rep < 5; ++rep) ss.observe(i);
  }
  EXPECT_EQ(ss.estimate(0), 5u);
  EXPECT_EQ(ss.estimate(1), 5u);
  EXPECT_EQ(ss.estimate(2), 5u);
}

TEST(SpaceSaving, NeverUndercounts) {
  SpaceSaving<std::uint32_t> ss(16);
  std::map<std::uint32_t, std::uint64_t> truth;
  amri::Rng rng(12);
  for (int i = 0; i < 20000; ++i) {
    const auto k = static_cast<std::uint32_t>(rng.below(200));
    ++truth[k];
    ss.observe(k);
  }
  for (const auto& [k, c] : truth) {
    const auto est = ss.estimate(k);
    if (est > 0) {
      EXPECT_GE(est, c > 0 ? 1u : 0u);
    }
  }
  // Tracked keys are never underestimated.
  for (const auto& item : ss.candidates()) {
    EXPECT_GE(item.count, truth[item.key]);
  }
}

TEST(SpaceSaving, SizeCappedAtCapacity) {
  SpaceSaving<int> ss(4);
  amri::Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    ss.observe(static_cast<int>(rng.below(100)));
    EXPECT_LE(ss.size(), 4u);
  }
}

TEST(SpaceSaving, HotKeysDominateCandidates) {
  SpaceSaving<int> ss(8);
  amri::Rng rng(8);
  for (int i = 0; i < 50000; ++i) {
    if (rng.uniform01() < 0.8) {
      ss.observe(static_cast<int>(rng.below(3)));  // hot: 0,1,2
    } else {
      ss.observe(100 + static_cast<int>(rng.below(1000)));
    }
  }
  const auto top = ss.candidates();
  ASSERT_GE(top.size(), 3u);
  for (int hot = 0; hot < 3; ++hot) {
    bool found = false;
    for (std::size_t i = 0; i < 3 && i < top.size(); ++i) {
      if (top[i].key == hot) found = true;
    }
    EXPECT_TRUE(found) << "hot key " << hot << " not in top-3";
  }
}

TEST(SpaceSaving, OverestimateFieldBoundsError) {
  SpaceSaving<int> ss(2);
  for (int i = 0; i < 100; ++i) ss.observe(i);  // constant churn
  for (const auto& item : ss.candidates()) {
    EXPECT_LE(item.overestimate, item.count);
  }
}

TEST(SpaceSaving, ThresholdFiltersCandidates) {
  SpaceSaving<int> ss(10);
  for (int i = 0; i < 50; ++i) ss.observe(1);
  ss.observe(2);
  const auto all = ss.candidates(0);
  const auto hot = ss.candidates(10);
  EXPECT_GT(all.size(), hot.size());
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0].key, 1);
}

}  // namespace
}  // namespace amri::stats
