#include "stats/frequency_map.hpp"

#include <gtest/gtest.h>

namespace amri::stats {
namespace {

TEST(FrequencyMap, AddCreatesAndIncrements) {
  FrequencyMap m;
  EXPECT_EQ(m.add(0b101), 1u);
  EXPECT_EQ(m.add(0b101), 2u);
  EXPECT_EQ(m.add(0b010), 1u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.total_observed(), 3u);
}

TEST(FrequencyMap, AddWithWeightAndDelta) {
  FrequencyMap m;
  m.add(0b1, 5, 3);
  const FreqEntry* e = m.find(0b1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 5u);
  EXPECT_EQ(e->max_error, 3u);
  // delta only applies at creation
  m.add(0b1, 1, 99);
  EXPECT_EQ(m.find(0b1)->max_error, 3u);
}

TEST(FrequencyMap, FindMissingIsNull) {
  FrequencyMap m;
  EXPECT_EQ(m.find(0b111), nullptr);
}

TEST(FrequencyMap, FrequencyComputation) {
  FrequencyMap m;
  m.add(0b1);
  m.add(0b1);
  m.add(0b10);
  m.add(0b100);
  EXPECT_DOUBLE_EQ(m.frequency(0b1), 0.5);
  EXPECT_DOUBLE_EQ(m.frequency(0b10), 0.25);
  EXPECT_DOUBLE_EQ(m.frequency(0b1000), 0.0);
}

TEST(FrequencyMap, FrequencyOnEmptyMapIsZero) {
  FrequencyMap m;
  EXPECT_DOUBLE_EQ(m.frequency(0b1), 0.0);
}

TEST(FrequencyMap, EraseKeepsTotal) {
  FrequencyMap m;
  m.add(0b1);
  m.add(0b10);
  m.erase(0b1);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.total_observed(), 2u);  // totals track the stream
}

TEST(FrequencyMap, SortedEntriesDeterministic) {
  FrequencyMap m;
  m.add(0b100);
  m.add(0b001);
  m.add(0b010);
  const auto entries = m.sorted_entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, 0b001u);
  EXPECT_EQ(entries[1].first, 0b010u);
  EXPECT_EQ(entries[2].first, 0b100u);
}

TEST(FrequencyMap, ApproxBytesGrowsWithEntries) {
  FrequencyMap m;
  const auto empty = m.approx_bytes();
  for (AttrMask i = 1; i <= 10; ++i) m.add(i);
  EXPECT_GT(m.approx_bytes(), empty);
}

TEST(FrequencyMap, ClearAndSetTotal) {
  FrequencyMap m;
  m.add(0b1, 10);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.total_observed(), 0u);
  m.add(0b1);
  m.set_total(100);
  EXPECT_EQ(m.total_observed(), 100u);
  m.reset_total();
  EXPECT_EQ(m.total_observed(), 0u);
}

}  // namespace
}  // namespace amri::stats
