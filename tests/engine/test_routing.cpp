#include "engine/routing_policy.hpp"

#include <gtest/gtest.h>

#include <map>

namespace amri::engine {
namespace {

RoutingContext two_candidates() {
  RoutingContext ctx;
  ctx.done_mask = 0b0001;
  ctx.candidates.push_back({1, 0b001});
  ctx.candidates.push_back({2, 0b001});
  return ctx;
}

TEST(RoutingStatistics, RecordAndFind) {
  RoutingStatistics stats;
  EXPECT_EQ(stats.find(1, 0b01), nullptr);
  stats.record(1, 0b01, 3.0, 50.0);
  const RouteStats* rs = stats.find(1, 0b01);
  ASSERT_NE(rs, nullptr);
  EXPECT_DOUBLE_EQ(rs->matches.value(), 3.0);
  EXPECT_DOUBLE_EQ(rs->compares.value(), 50.0);
  EXPECT_EQ(stats.size(), 1u);
}

TEST(RoutingStatistics, KeysSeparateStateAndPattern) {
  RoutingStatistics stats;
  stats.record(1, 0b01, 1.0, 1.0);
  stats.record(1, 0b10, 2.0, 2.0);
  stats.record(2, 0b01, 3.0, 3.0);
  EXPECT_EQ(stats.size(), 3u);
  EXPECT_DOUBLE_EQ(stats.find(2, 0b01)->matches.value(), 3.0);
}

TEST(FixedPolicy, AlwaysLowestStreamId) {
  RoutingOptions opts;
  opts.kind = RoutingPolicyKind::kFixed;
  const auto policy = make_routing_policy(opts);
  RoutingContext ctx;
  ctx.candidates.push_back({3, 0});
  ctx.candidates.push_back({1, 0});
  ctx.candidates.push_back({2, 0});
  RoutingStatistics stats;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policy->choose(ctx, stats), 1u);  // stream 1 at index 1
  }
}

TEST(CostBasedPolicy, PrefersCheaperOperator) {
  RoutingOptions opts;
  opts.kind = RoutingPolicyKind::kCostBased;
  opts.exploration_rate = 0.0;
  const auto policy = make_routing_policy(opts);
  RoutingStatistics stats;
  stats.record(1, 0b001, 10.0, 500.0);  // expensive, high fanout
  stats.record(2, 0b001, 0.5, 20.0);    // cheap, selective
  const RoutingContext ctx = two_candidates();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ctx.candidates[policy->choose(ctx, stats)].state, 2u);
  }
}

TEST(CostBasedPolicy, ExplorationVisitsSuboptimal) {
  RoutingOptions opts;
  opts.kind = RoutingPolicyKind::kCostBased;
  opts.exploration_rate = 0.3;
  opts.seed = 11;
  const auto policy = make_routing_policy(opts);
  RoutingStatistics stats;
  stats.record(1, 0b001, 10.0, 500.0);
  stats.record(2, 0b001, 0.5, 20.0);
  const RoutingContext ctx = two_candidates();
  std::map<StreamId, int> picks;
  for (int i = 0; i < 2000; ++i) {
    ++picks[ctx.candidates[policy->choose(ctx, stats)].state];
  }
  EXPECT_GT(picks[1], 100);   // suboptimal still visited (stat refresh)
  EXPECT_GT(picks[2], 1500);  // optimal dominates
}

TEST(CostBasedPolicy, UnknownPatternsPreferMoreBoundAttrs) {
  RoutingOptions opts;
  opts.kind = RoutingPolicyKind::kCostBased;
  opts.exploration_rate = 0.0;
  const auto policy = make_routing_policy(opts);
  RoutingStatistics stats;  // empty: no observations at all
  RoutingContext ctx;
  ctx.candidates.push_back({1, 0b001});   // binds 1 attr
  ctx.candidates.push_back({2, 0b011});   // binds 2 attrs
  EXPECT_EQ(ctx.candidates[policy->choose(ctx, stats)].state, 2u);
}

TEST(LotteryPolicy, FavorsSelectiveOperatorsStatistically) {
  RoutingOptions opts;
  opts.kind = RoutingPolicyKind::kLottery;
  opts.exploration_rate = 0.0;
  opts.seed = 17;
  const auto policy = make_routing_policy(opts);
  RoutingStatistics stats;
  stats.record(1, 0b001, 9.9, 100.0);  // fanout ~10
  stats.record(2, 0b001, 0.1, 100.0);  // fanout ~0.1
  const RoutingContext ctx = two_candidates();
  std::map<StreamId, int> picks;
  for (int i = 0; i < 5000; ++i) {
    ++picks[ctx.candidates[policy->choose(ctx, stats)].state];
  }
  // Ticket ratio = (1/0.2) : (1/10) = 25 : 0.5 -> state 2 overwhelmingly.
  EXPECT_GT(picks[2], picks[1] * 5);
  EXPECT_GT(picks[1], 0);  // but state 1 still drawn sometimes
}

TEST(Policies, SingleCandidateAlwaysChosen) {
  for (const auto kind : {RoutingPolicyKind::kFixed,
                          RoutingPolicyKind::kCostBased,
                          RoutingPolicyKind::kLottery}) {
    RoutingOptions opts;
    opts.kind = kind;
    const auto policy = make_routing_policy(opts);
    RoutingContext ctx;
    ctx.candidates.push_back({7, 0b11});
    RoutingStatistics stats;
    EXPECT_EQ(policy->choose(ctx, stats), 0u) << policy->name();
  }
}

TEST(Policies, Names) {
  RoutingOptions opts;
  opts.kind = RoutingPolicyKind::kFixed;
  EXPECT_EQ(make_routing_policy(opts)->name(), "fixed");
  opts.kind = RoutingPolicyKind::kCostBased;
  EXPECT_EQ(make_routing_policy(opts)->name(), "cost_based");
  opts.kind = RoutingPolicyKind::kLottery;
  EXPECT_EQ(make_routing_policy(opts)->name(), "lottery");
}

}  // namespace
}  // namespace amri::engine
