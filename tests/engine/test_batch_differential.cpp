// End-to-end differential equivalence for the batched execution pipeline:
// a run with --batch-size > 1 must be observationally identical to the
// tuple-at-a-time run — same join-result multiset, same final tuner IC per
// state, same migration counts, and the same *modelled cost* down to the
// meter's exact operation counters — across batch {1, 16, 256} and shard
// {1, 4} combinations.
//
// Divergence channels are pinned the same way as the sharded differential
// harness (kFixed routing, SRIA/DIA assessors, window off the arrival
// grid), with one addition: arrivals come in *bursts* of ~25 tuples that
// share a timestamp, 1.25 s apart. Bursts are what make batches actually
// form (the executor only drains arrivals that are already due), and the
// 25 ms slack between the expiry horizon and the burst grid dwarfs the
// sub-millisecond virtual-time skew from expiring once per batch instead
// of once per tuple, so both runs expire identical tuple sets.
// charged_us is compared with a tolerance: the per-operation charge
// *counts* are exactly equal (asserted), but summing the same charges in a
// different order rounds differently in floating point.
//
// One deliberate exception: >= 3-stream scenarios whose tuner migrates
// mid-batch compare the probe-work counters with a 0.1 % tolerance instead
// of equality — see Scenario::exact_probe_work for why that channel is
// inherent to level-order batching rather than a bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <string>
#include <vector>

#include "../test_util.hpp"
#include "common/rng.hpp"
#include "engine/executor.hpp"

namespace amri::engine {
namespace {

class ScriptedSource final : public TupleSource {
 public:
  explicit ScriptedSource(std::vector<Tuple> tuples)
      : tuples_(tuples.begin(), tuples.end()) {}
  std::optional<Tuple> next() override {
    if (tuples_.empty()) return std::nullopt;
    Tuple t = tuples_.front();
    tuples_.pop_front();
    return t;
  }

 private:
  std::deque<Tuple> tuples_;
};

struct Observed {
  std::uint64_t outputs = 0;
  std::vector<std::vector<TupleSeq>> results;  ///< sorted member-seq lists
  std::vector<std::string> final_ics;
  std::vector<std::uint64_t> migrations;
  std::uint64_t total_migrations = 0;
  // The six exact meter counters plus the (order-sensitive) charged total.
  std::uint64_t hashes = 0, compares = 0, routes = 0;
  std::uint64_t inserts = 0, deletes = 0, bucket_visits = 0;
  double charged_us = 0.0;
};

struct Scenario {
  std::string name;
  std::size_t streams = 3;
  std::size_t num_attrs = 2;
  std::size_t tuples = 1600;
  std::size_t burst = 25;  ///< arrivals sharing each timestamp
  std::uint64_t seed = 1;
  Value domain = 6;
  assessment::AssessorKind assessor = assessment::AssessorKind::kSria;
  tuner::StatsRetention retention = tuner::StatsRetention::kReset;
  std::uint64_t reassess_every = 150;
  double first_half_s0 = 0.8;
  double second_half_s0 = 0.2;
  /// When true, the probe-work counters (hashes, compares, bucket visits)
  /// must be bit-identical across batch sizes. This holds unconditionally
  /// for 2-stream joins: every routing tree has depth 1, so each STeM sees
  /// its probe requests in exactly arrival order under both the sequential
  /// and the level-order batched schedule. For >= 3-stream joins the two
  /// schedules permute each STeM's request stream (level-order partitions
  /// vs depth-first descent), and when a tuner migration fires *mid-batch*
  /// — after the same per-STeM request count in both runs, so cadence, IC
  /// choices, and migration counts still match — a handful of probes swap
  /// sides of the migration boundary and execute under the other IC. Set
  /// false for such scenarios: probe-work counters then get a tight
  /// relative tolerance instead of equality (see docs/architecture.md).
  bool exact_probe_work = true;
};

std::vector<Tuple> make_bursty_arrivals(const Scenario& sc) {
  std::vector<Tuple> tuples;
  Rng rng(sc.seed);
  for (std::size_t i = 0; i < sc.tuples; ++i) {
    Tuple t;
    const double s0_share =
        i < sc.tuples / 2 ? sc.first_half_s0 : sc.second_half_s0;
    t.stream = rng.chance(s0_share)
                   ? 0
                   : static_cast<StreamId>(1 + rng.below(sc.streams - 1));
    // Whole bursts share a timestamp 1.25 s apart: every burst is fully
    // due the moment the executor reaches it, so batch-size > 1 drains
    // real multi-tuple batches (and skewed stream shares give the
    // same-stream runs that insert_batch/route_batch vectorise over).
    t.ts = seconds_to_micros(1.25 * static_cast<double>(i / sc.burst));
    t.seq = static_cast<TupleSeq>(i);
    for (std::size_t a = 0; a < sc.num_attrs; ++a) {
      t.values.push_back(
          static_cast<Value>(rng.below(static_cast<std::uint64_t>(sc.domain))));
    }
    tuples.push_back(t);
  }
  return tuples;
}

Observed run_scenario(const Scenario& sc, std::size_t batch,
                      std::size_t shards) {
  // 30.025 s: 25 ms past a burst timestamp, so the expiry horizon never
  // sits within the batch's virtual-time cost jitter of an arrival.
  const QuerySpec q =
      make_complete_join_query(sc.streams, seconds_to_micros(30.025));
  ExecutorOptions o;
  const double span = 1.25 * static_cast<double>(sc.tuples / sc.burst);
  o.duration = seconds_to_micros(span + 10);
  o.sample_every = seconds_to_micros(20);
  o.batch_size = batch;
  o.stem.backend = IndexBackend::kAmri;
  o.stem.shards = shards;
  o.eddy.routing.kind = RoutingPolicyKind::kFixed;
  tuner::TunerOptions topts;
  topts.assessor = sc.assessor;
  topts.retention = sc.retention;
  topts.theta = 0.1;
  topts.reassess_every = sc.reassess_every;
  topts.optimizer.bit_budget = 4;
  topts.optimizer.max_bits_per_attr = 3;
  o.stem.amri_tuner = topts;

  Observed obs;
  o.on_result = [&obs](const JoinResult& jr) {
    std::vector<TupleSeq> key;
    key.reserve(jr.members.size());
    for (const Tuple* m : jr.members) key.push_back(m->seq);
    obs.results.push_back(std::move(key));
  };

  Executor ex(q, o);
  ScriptedSource src(make_bursty_arrivals(sc));
  const RunResult r = ex.run(src);

  obs.outputs = r.outputs;
  std::sort(obs.results.begin(), obs.results.end());
  for (const StateSummary& s : r.states) {
    obs.migrations.push_back(s.migrations);
    obs.total_migrations += s.migrations;
  }
  for (const auto& stem : ex.stems()) {
    const index::IndexConfig* ic = stem->current_config();
    EXPECT_NE(ic, nullptr);
    obs.final_ics.push_back(ic ? ic->to_string() : "<none>");
    stem->check_invariants();
  }
  const CostMeter& m = ex.meter();
  obs.hashes = m.hashes();
  obs.compares = m.compares();
  obs.routes = m.routes();
  obs.inserts = m.inserts();
  obs.deletes = m.deletes();
  obs.bucket_visits = m.bucket_visits();
  obs.charged_us = m.charged_us();
  return obs;
}

void expect_equivalent(const Scenario& sc) {
  const Observed base = run_scenario(sc, /*batch=*/1, /*shards=*/1);
  // The scenario must exercise the interesting machinery, not hold
  // vacuously: results, mid-run migrations, and real routing work.
  EXPECT_GT(base.outputs, 0u) << sc.name;
  EXPECT_GT(base.total_migrations, 0u) << sc.name;
  EXPECT_GT(base.routes, 0u) << sc.name;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    // Cost counters are compared within one shard count: a targeted probe
    // of a sharded state legitimately compares fewer co-residents than the
    // unpartitioned index (the sharded differential harness documents
    // this), so the batch-vs-tuple-at-a-time cost baseline is the batch=1
    // run at the SAME shard count.
    const Observed& shard_base =
        shards == 1 ? base : run_scenario(sc, /*batch=*/1, shards);
    if (shards != 1) {
      // Logical observables still match across shard counts.
      EXPECT_EQ(shard_base.outputs, base.outputs) << sc.name;
      EXPECT_EQ(shard_base.results, base.results) << sc.name;
      EXPECT_EQ(shard_base.final_ics, base.final_ics) << sc.name;
      EXPECT_EQ(shard_base.migrations, base.migrations) << sc.name;
    }
    for (const std::size_t batch : {std::size_t{16}, std::size_t{256}}) {
      const Observed got = run_scenario(sc, batch, shards);
      const std::string tag =
          sc.name + " batch=" + std::to_string(batch) + " shards=" +
          std::to_string(shards);
      EXPECT_EQ(got.outputs, base.outputs) << tag;
      EXPECT_EQ(got.results, base.results) << tag;
      EXPECT_EQ(got.final_ics, base.final_ics) << tag;
      EXPECT_EQ(got.migrations, base.migrations) << tag;
      EXPECT_EQ(got.routes, shard_base.routes) << tag;
      EXPECT_EQ(got.inserts, shard_base.inserts) << tag;
      EXPECT_EQ(got.deletes, shard_base.deletes) << tag;
      if (sc.exact_probe_work) {
        EXPECT_EQ(got.hashes, shard_base.hashes) << tag;
        EXPECT_EQ(got.compares, shard_base.compares) << tag;
        EXPECT_EQ(got.bucket_visits, shard_base.bucket_visits) << tag;
        EXPECT_NEAR(got.charged_us, shard_base.charged_us,
                    1e-6 * shard_base.charged_us + 1e-6)
            << tag;
      } else {
        // Mid-batch migration boundaries reassign a few probes to the
        // other IC (see Scenario::exact_probe_work); observed drift is
        // a handful of compares out of hundreds of thousands, so 0.1 %
        // is a tight bound that still fails on any real regression.
        const auto near_count = [&](std::uint64_t got_v, std::uint64_t want_v,
                                    const char* what) {
          EXPECT_NEAR(static_cast<double>(got_v), static_cast<double>(want_v),
                      1e-3 * static_cast<double>(want_v) + 1.0)
              << tag << " " << what;
        };
        near_count(got.hashes, shard_base.hashes, "hashes");
        near_count(got.compares, shard_base.compares, "compares");
        near_count(got.bucket_visits, shard_base.bucket_visits,
                   "bucket_visits");
        EXPECT_NEAR(got.charged_us, shard_base.charged_us,
                    1e-3 * shard_base.charged_us + 1e-6)
            << tag;
      }
    }
  }
}

TEST(BatchDifferential, ThreeStreamDriftSria) {
  Scenario sc;
  sc.name = "batch-three-stream-sria";
  sc.seed = 404;
  sc.retention = tuner::StatsRetention::kKeep;
  expect_equivalent(sc);
}

// Two streams: every routing tree has depth 1, so the batched schedule is
// provably a per-STeM order-preserving permutation of the sequential one
// and even mid-batch migrations cannot move probes across an IC boundary —
// all cost counters must be bit-identical (Scenario::exact_probe_work).
TEST(BatchDifferential, TwoStreamDiaDrift) {
  Scenario sc;
  sc.name = "batch-two-stream-dia";
  sc.streams = 2;
  sc.tuples = 1500;
  sc.seed = 505;
  sc.domain = 7;
  sc.assessor = assessment::AssessorKind::kDia;
  sc.retention = tuner::StatsRetention::kReset;
  sc.first_half_s0 = 0.7;
  sc.second_half_s0 = 0.15;
  expect_equivalent(sc);
}

// kReset / kKeep retention only: kDecay is excluded for the same reason as
// in the sharded harness (per-entry truncation is not batching-invariant —
// see docs/architecture.md). Three streams with DIA drift reliably lands a
// migration mid-batch, so this is the scenario that exercises the
// probe-reorder tolerance path.
TEST(BatchDifferential, ThreeStreamDiaDrift) {
  Scenario sc;
  sc.name = "batch-three-stream-dia";
  sc.tuples = 1500;
  sc.seed = 505;
  sc.domain = 7;
  sc.assessor = assessment::AssessorKind::kDia;
  sc.retention = tuner::StatsRetention::kReset;
  sc.first_half_s0 = 0.7;
  sc.second_half_s0 = 0.15;
  sc.exact_probe_work = false;
  expect_equivalent(sc);
}

}  // namespace
}  // namespace amri::engine
