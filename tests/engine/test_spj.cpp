// End-to-end SPJ behaviour through the executor: WHERE selections filter
// at ingest, SELECT projections shape collected rows.
#include <gtest/gtest.h>

#include <deque>

#include "../test_util.hpp"
#include "engine/executor.hpp"

namespace amri::engine {
namespace {

class ScriptedSource final : public TupleSource {
 public:
  explicit ScriptedSource(std::vector<Tuple> tuples)
      : tuples_(tuples.begin(), tuples.end()) {}
  std::optional<Tuple> next() override {
    if (tuples_.empty()) return std::nullopt;
    Tuple t = tuples_.front();
    tuples_.pop_front();
    return t;
  }

 private:
  std::deque<Tuple> tuples_;
};

Tuple mk(StreamId s, double ts_sec, std::initializer_list<Value> vals) {
  return testutil::make_tuple(vals, 0, seconds_to_micros(ts_sec), s);
}

ExecutorOptions scan_options() {
  ExecutorOptions o;
  o.duration = seconds_to_micros(100);
  o.stem.backend = IndexBackend::kScan;
  return o;
}

TEST(SpjExecutor, SelectionFiltersBeforeJoin) {
  QuerySpec q = make_complete_join_query(2, seconds_to_micros(50));
  // Stream 0 has attributes {j01}; require j01 >= 10.
  q.set_selection(0, Selection({{0, CompareOp::kGe, 10}}));
  ScriptedSource src({mk(0, 1, {5}), mk(1, 2, {5}),     // filtered: no join
                      mk(0, 3, {12}), mk(1, 4, {12})});  // passes: joins
  Executor ex(q, scan_options());
  const auto r = ex.run(src);
  EXPECT_EQ(r.outputs, 1u);
  EXPECT_EQ(r.arrivals_filtered, 1u);
  EXPECT_EQ(r.arrivals, 3u);  // the filtered tuple is not processed further
}

TEST(SpjExecutor, FilteredTuplesNotStored) {
  QuerySpec q = make_complete_join_query(2, seconds_to_micros(50));
  q.set_selection(1, Selection({{0, CompareOp::kLt, 0}}));  // rejects all
  ScriptedSource src({mk(1, 1, {7}), mk(1, 2, {8}), mk(0, 3, {7})});
  Executor ex(q, scan_options());
  const auto r = ex.run(src);
  EXPECT_EQ(r.outputs, 0u);
  EXPECT_EQ(ex.stems()[1]->stored_tuples(), 0u);
  EXPECT_EQ(r.arrivals_filtered, 2u);
}

TEST(SpjExecutor, CollectedRowsUseProjection) {
  QuerySpec q = make_complete_join_query(2, seconds_to_micros(50));
  // K2 schemas: stream0{j01}, stream1{j01}; project only stream 1's attr.
  q.set_projection(Projection({{1, 0}}));
  ScriptedSource src({mk(0, 1, {42}), mk(1, 2, {42})});
  ExecutorOptions o = scan_options();
  o.collect_rows = true;
  Executor ex(q, o);
  const auto r = ex.run(src);
  ASSERT_EQ(r.rows.size(), 1u);
  ASSERT_EQ(r.rows[0].size(), 1u);
  EXPECT_EQ(r.rows[0][0], 42);
}

TEST(SpjExecutor, SelectStarRowsConcatenate) {
  QuerySpec q = make_complete_join_query(2, seconds_to_micros(50));
  ScriptedSource src({mk(0, 1, {9}), mk(1, 2, {9})});
  ExecutorOptions o = scan_options();
  o.collect_rows = true;
  Executor ex(q, o);
  const auto r = ex.run(src);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].size(), 2u);  // one attr per stream
}

TEST(SpjExecutor, RowCollectionCapped) {
  QuerySpec q = make_complete_join_query(2, seconds_to_micros(500));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 40; ++i) {
    tuples.push_back(mk(i % 2 == 0 ? 0 : 1, i + 1.0, {1}));
  }
  ScriptedSource src(std::move(tuples));
  ExecutorOptions o = scan_options();
  o.duration = seconds_to_micros(1000);
  o.collect_rows = true;
  o.max_collected_rows = 5;
  Executor ex(q, o);
  const auto r = ex.run(src);
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_GT(r.outputs, 5u);  // counting continues past the cap
}

TEST(SpjExecutor, SelectionCostCharged) {
  QuerySpec q = make_complete_join_query(2, seconds_to_micros(50));
  q.set_selection(0, Selection({{0, CompareOp::kGe, 0}}));
  ScriptedSource src({mk(0, 1, {1})});
  ExecutorOptions o = scan_options();
  o.costs.compare_cost_us = 100.0;
  Executor ex(q, o);
  ex.run(src);
  EXPECT_GE(ex.clock().now(), 100);
}

}  // namespace
}  // namespace amri::engine
