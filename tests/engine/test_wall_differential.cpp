// End-to-end differential equivalence for the wall-clock engine mode: a
// run with --engine wall must be observationally identical to the
// cost-metered virtual pipeline — same join-result multiset, same final
// tuner IC per state, same migration counts, and the same modelled insert
// / delete / route counts — across wall batch {1, 64, 256} and shard
// {1, 4} combinations, overlap on and off.
//
// What is deliberately NOT compared: the probe-work counters (hashes,
// compares, bucket visits) and the charged-time total. Wall mode inserts
// the whole mixed-stream batch up front and routes it as one partition
// under a per-root sequence horizon (BatchVisibility): a probe can
// therefore scan batch peers that virtual mode would not have stored yet,
// and the horizon discards those matches only *after* the comparisons were
// performed and charged. The join results are identical by construction;
// the probe-work meters legitimately count the extra scans. (Insert,
// delete and route charges have no such channel: the same tuples are
// stored, expired and the same partial results take the same hops.)
//
// Divergence channels are pinned as in the batched differential harness:
// kFixed routing, bursty arrivals so batches actually form, and a window
// offset 25 ms off the burst grid so per-batch expiry never straddles an
// arrival.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <string>
#include <vector>

#include "../test_util.hpp"
#include "common/rng.hpp"
#include "engine/executor.hpp"

namespace amri::engine {
namespace {

class ScriptedSource final : public TupleSource {
 public:
  explicit ScriptedSource(std::vector<Tuple> tuples)
      : tuples_(tuples.begin(), tuples.end()) {}
  std::optional<Tuple> next() override {
    if (tuples_.empty()) return std::nullopt;
    Tuple t = tuples_.front();
    tuples_.pop_front();
    return t;
  }

 private:
  std::deque<Tuple> tuples_;
};

struct Observed {
  std::uint64_t outputs = 0;
  std::uint64_t arrivals_filtered = 0;
  std::vector<std::vector<TupleSeq>> results;  ///< sorted member-seq lists
  std::vector<std::string> final_ics;
  std::vector<std::uint64_t> migrations;
  std::uint64_t total_migrations = 0;
  std::uint64_t routes = 0, inserts = 0, deletes = 0;
};

struct Scenario {
  std::string name;
  std::size_t streams = 3;
  std::size_t num_attrs = 2;
  std::size_t tuples = 1600;
  std::size_t burst = 25;  ///< arrivals sharing each timestamp
  std::uint64_t seed = 1;
  Value domain = 6;
  bool with_selection = false;  ///< WHERE filter on stream 0
  assessment::AssessorKind assessor = assessment::AssessorKind::kSria;
  tuner::StatsRetention retention = tuner::StatsRetention::kReset;
  std::uint64_t reassess_every = 150;
  double first_half_s0 = 0.8;
  double second_half_s0 = 0.2;
};

std::vector<Tuple> make_bursty_arrivals(const Scenario& sc) {
  std::vector<Tuple> tuples;
  Rng rng(sc.seed);
  for (std::size_t i = 0; i < sc.tuples; ++i) {
    Tuple t;
    const double s0_share =
        i < sc.tuples / 2 ? sc.first_half_s0 : sc.second_half_s0;
    t.stream = rng.chance(s0_share)
                   ? 0
                   : static_cast<StreamId>(1 + rng.below(sc.streams - 1));
    // Whole bursts share a timestamp 1.25 s apart: every burst is fully
    // due the moment the executor reaches it, so wall batches really mix
    // streams (the cross-run batching this harness exists to check).
    t.ts = seconds_to_micros(1.25 * static_cast<double>(i / sc.burst));
    t.seq = static_cast<TupleSeq>(i);
    for (std::size_t a = 0; a < sc.num_attrs; ++a) {
      t.values.push_back(
          static_cast<Value>(rng.below(static_cast<std::uint64_t>(sc.domain))));
    }
    tuples.push_back(t);
  }
  return tuples;
}

struct RunConfig {
  EngineMode engine = EngineMode::kVirtual;
  std::size_t batch = 1;
  std::size_t shards = 1;
  bool overlap = true;
  bool prefetch = true;
};

Observed run_scenario(const Scenario& sc, const RunConfig& rc) {
  const QuerySpec base_q =
      make_complete_join_query(sc.streams, seconds_to_micros(30.025));
  QuerySpec q = base_q;
  if (sc.with_selection) {
    // Reject one domain value on stream 0 so the drain path (and the
    // overlap worker's WHERE pass) does real selection work.
    q.set_selection(0, Selection({FilterPredicate{0, CompareOp::kNe, 2}}));
  }
  ExecutorOptions o;
  const double span = 1.25 * static_cast<double>(sc.tuples / sc.burst);
  o.duration = seconds_to_micros(span + 10);
  o.sample_every = seconds_to_micros(20);
  o.engine = rc.engine;
  o.batch_size = rc.batch;
  o.wall_overlap = rc.overlap;
  // The harness is about the concurrent handoff's semantics, so the worker
  // must actually run even when CI lands on a single-core machine (where
  // the executor would otherwise skip it as a pure pessimisation).
  o.wall_overlap_force = true;
  o.wall_probe_prefetch = rc.prefetch;
  o.stem.backend = IndexBackend::kAmri;
  o.stem.shards = rc.shards;
  o.eddy.routing.kind = RoutingPolicyKind::kFixed;
  tuner::TunerOptions topts;
  topts.assessor = sc.assessor;
  topts.retention = sc.retention;
  topts.theta = 0.1;
  topts.reassess_every = sc.reassess_every;
  topts.optimizer.bit_budget = 4;
  topts.optimizer.max_bits_per_attr = 3;
  o.stem.amri_tuner = topts;

  Observed obs;
  o.on_result = [&obs](const JoinResult& jr) {
    std::vector<TupleSeq> key;
    key.reserve(jr.members.size());
    for (const Tuple* m : jr.members) key.push_back(m->seq);
    obs.results.push_back(std::move(key));
  };

  Executor ex(q, o);
  ScriptedSource src(make_bursty_arrivals(sc));
  const RunResult r = ex.run(src);

  obs.outputs = r.outputs;
  obs.arrivals_filtered = r.arrivals_filtered;
  std::sort(obs.results.begin(), obs.results.end());
  for (const StateSummary& s : r.states) {
    obs.migrations.push_back(s.migrations);
    obs.total_migrations += s.migrations;
  }
  for (const auto& stem : ex.stems()) {
    const index::IndexConfig* ic = stem->current_config();
    EXPECT_NE(ic, nullptr);
    obs.final_ics.push_back(ic ? ic->to_string() : "<none>");
    stem->check_invariants();
  }
  const CostMeter& m = ex.meter();
  obs.routes = m.routes();
  obs.inserts = m.inserts();
  obs.deletes = m.deletes();
  return obs;
}

void expect_wall_equivalent(const Scenario& sc) {
  const Observed base =
      run_scenario(sc, RunConfig{EngineMode::kVirtual, 1, 1});
  // The scenario must exercise the interesting machinery, not hold
  // vacuously.
  EXPECT_GT(base.outputs, 0u) << sc.name;
  EXPECT_GT(base.total_migrations, 0u) << sc.name;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    // Route/insert/delete counters are compared within one shard count:
    // a targeted probe of a sharded state legitimately behaves differently
    // from the unpartitioned index (see the sharded differential harness),
    // so the wall-vs-virtual baseline is the virtual run at the SAME
    // shard count.
    const Observed& shard_base =
        shards == 1
            ? base
            : run_scenario(sc, RunConfig{EngineMode::kVirtual, 1, shards});
    if (shards != 1) {
      EXPECT_EQ(shard_base.outputs, base.outputs) << sc.name;
      EXPECT_EQ(shard_base.results, base.results) << sc.name;
      EXPECT_EQ(shard_base.final_ics, base.final_ics) << sc.name;
      EXPECT_EQ(shard_base.migrations, base.migrations) << sc.name;
    }
    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{64}, std::size_t{256}}) {
      const Observed got = run_scenario(
          sc, RunConfig{EngineMode::kWall, batch, shards});
      const std::string tag = sc.name + " wall batch=" +
                              std::to_string(batch) +
                              " shards=" + std::to_string(shards);
      EXPECT_EQ(got.outputs, shard_base.outputs) << tag;
      EXPECT_EQ(got.results, shard_base.results) << tag;
      EXPECT_EQ(got.arrivals_filtered, shard_base.arrivals_filtered) << tag;
      EXPECT_EQ(got.final_ics, shard_base.final_ics) << tag;
      EXPECT_EQ(got.migrations, shard_base.migrations) << tag;
      EXPECT_EQ(got.routes, shard_base.routes) << tag;
      EXPECT_EQ(got.inserts, shard_base.inserts) << tag;
      EXPECT_EQ(got.deletes, shard_base.deletes) << tag;
    }
  }
}

TEST(WallDifferential, ThreeStreamDriftSria) {
  Scenario sc;
  sc.name = "wall-three-stream-sria";
  sc.seed = 404;
  sc.retention = tuner::StatsRetention::kKeep;
  expect_wall_equivalent(sc);
}

TEST(WallDifferential, TwoStreamDiaDriftWithSelection) {
  Scenario sc;
  sc.name = "wall-two-stream-dia";
  sc.streams = 2;
  sc.tuples = 1500;
  sc.seed = 505;
  sc.domain = 7;
  sc.with_selection = true;
  sc.assessor = assessment::AssessorKind::kDia;
  sc.retention = tuner::StatsRetention::kReset;
  sc.first_half_s0 = 0.7;
  sc.second_half_s0 = 0.15;
  expect_wall_equivalent(sc);
}

TEST(WallDifferential, ThreeStreamDiaDrift) {
  Scenario sc;
  sc.name = "wall-three-stream-dia";
  sc.tuples = 1500;
  sc.seed = 505;
  sc.domain = 7;
  sc.assessor = assessment::AssessorKind::kDia;
  sc.retention = tuner::StatsRetention::kReset;
  sc.first_half_s0 = 0.7;
  sc.second_half_s0 = 0.15;
  expect_wall_equivalent(sc);
}

// Wall-mode optimisation toggles must be semantics-free: prefetch off,
// overlap off, and both off produce the identical observable run. Big
// bursts (several times the batch size) keep the backlog non-empty after
// every drain, so the overlap worker genuinely runs concurrently with
// routing — under TSan this is the test that hunts data races on the
// backlog / double-buffer handoff.
TEST(WallDifferential, OverlapAndPrefetchTogglesAreSemanticsFree) {
  Scenario sc;
  sc.name = "wall-overlap-stress";
  sc.streams = 2;
  sc.tuples = 4800;
  sc.burst = 300;  // ~5 back-to-back batches of 64 per burst
  sc.seed = 808;
  sc.domain = 7;
  sc.with_selection = true;
  sc.assessor = assessment::AssessorKind::kDia;

  const RunConfig full{EngineMode::kWall, 64, 1, /*overlap=*/true,
                       /*prefetch=*/true};
  const Observed want = run_scenario(sc, full);
  EXPECT_GT(want.outputs, 0u);
  EXPECT_GT(want.arrivals_filtered, 0u)
      << "selection must reject something or the worker's WHERE pass is "
         "vacuous";

  for (const RunConfig rc :
       {RunConfig{EngineMode::kWall, 64, 1, false, true},
        RunConfig{EngineMode::kWall, 64, 1, true, false},
        RunConfig{EngineMode::kWall, 64, 1, false, false},
        RunConfig{EngineMode::kWall, 64, 4, true, true}}) {
    const Observed got = run_scenario(sc, rc);
    const std::string tag = std::string("overlap=") +
                            (rc.overlap ? "1" : "0") + " prefetch=" +
                            (rc.prefetch ? "1" : "0") + " shards=" +
                            std::to_string(rc.shards);
    EXPECT_EQ(got.outputs, want.outputs) << tag;
    EXPECT_EQ(got.results, want.results) << tag;
    EXPECT_EQ(got.arrivals_filtered, want.arrivals_filtered) << tag;
    if (rc.shards == 1) {
      EXPECT_EQ(got.final_ics, want.final_ics) << tag;
      EXPECT_EQ(got.migrations, want.migrations) << tag;
    }
  }
}

}  // namespace
}  // namespace amri::engine
