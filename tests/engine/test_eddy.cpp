#include "engine/eddy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "../test_util.hpp"

namespace amri::engine {
namespace {

index::CostModel model() {
  return index::CostModel(index::WorkloadParams{});
}

StemOptions scan_backend() {
  StemOptions o;
  o.backend = IndexBackend::kScan;
  return o;
}

struct Rig {
  QuerySpec query;
  std::vector<std::unique_ptr<StemOperator>> stems;
  std::unique_ptr<EddyRouter> eddy;

  Rig(std::size_t k, StemOptions stem_opts, EddyOptions eddy_opts = {})
      : query(make_complete_join_query(k, seconds_to_micros(1000))) {
    std::vector<StemOperator*> ptrs;
    for (StreamId s = 0; s < k; ++s) {
      stems.push_back(std::make_unique<StemOperator>(
          s, query.layout(s), query.window(), stem_opts, model()));
      ptrs.push_back(stems.back().get());
    }
    eddy = std::make_unique<EddyRouter>(query, std::move(ptrs), eddy_opts);
  }

  std::uint64_t arrive(StreamId s, TimeMicros ts,
                       std::initializer_list<Value> vals,
                       std::vector<JoinResult>* sink = nullptr) {
    Tuple t = testutil::make_tuple(vals, 0, ts, s);
    const Tuple* stored = stems[s]->insert(t);
    return eddy->route(stored, sink);
  }
};

TEST(EddyRouter, TwoWayJoinProducesPairExactlyOnce) {
  Rig rig(2, scan_backend());
  EXPECT_EQ(rig.arrive(0, 1, {42}), 0u);  // nothing to join yet
  EXPECT_EQ(rig.arrive(1, 2, {42}), 1u);  // matches the stored tuple
  EXPECT_EQ(rig.arrive(1, 3, {41}), 0u);  // no match
  EXPECT_EQ(rig.eddy->results_produced(), 1u);
  EXPECT_EQ(rig.eddy->arrivals_routed(), 3u);
}

TEST(EddyRouter, ThreeWayJoinRequiresAllPredicates) {
  // K3: streams A{j01,j02}, B{j01,j12}, C{j02,j12}.
  Rig rig(3, scan_backend());
  rig.arrive(0, 1, {7, 8});    // A: j01=7, j02=8
  rig.arrive(1, 2, {7, 9});    // B: j01=7, j12=9
  // C must satisfy j02=8 (with A) and j12=9 (with B).
  EXPECT_EQ(rig.arrive(2, 3, {8, 9}), 1u);
  EXPECT_EQ(rig.arrive(2, 4, {8, 1}), 0u);  // violates B-C predicate
  EXPECT_EQ(rig.arrive(2, 5, {1, 9}), 0u);  // violates A-C predicate
}

TEST(EddyRouter, ResultDeliveredToSink) {
  Rig rig(2, scan_backend());
  rig.arrive(0, 1, {5});
  std::vector<JoinResult> sink;
  rig.arrive(1, 2, {5}, &sink);
  ASSERT_EQ(sink.size(), 1u);
  ASSERT_EQ(sink[0].members.size(), 2u);
  EXPECT_EQ(sink[0].members[0]->at(0), 5);
  EXPECT_EQ(sink[0].members[1]->at(0), 5);
}

TEST(EddyRouter, FanOutCountsAllCombinations) {
  Rig rig(2, scan_backend());
  rig.arrive(0, 1, {3});
  rig.arrive(0, 2, {3});
  rig.arrive(0, 3, {3});
  // One B tuple joins all three stored A tuples.
  EXPECT_EQ(rig.arrive(1, 4, {3}), 3u);
}

TEST(EddyRouter, FourWayCompleteJoin) {
  Rig rig(4, scan_backend());
  // One tuple per stream, all predicate values aligned:
  // A{j01,j02,j03}, B{j01,j12,j13}, C{j02,j12,j23}, D{j03,j13,j23}.
  rig.arrive(0, 1, {1, 2, 3});
  rig.arrive(1, 2, {1, 4, 5});
  rig.arrive(2, 3, {2, 4, 6});
  EXPECT_EQ(rig.arrive(3, 4, {3, 5, 6}), 1u);
}

TEST(EddyRouter, RouteOrderDoesNotChangeResults) {
  // Same arrivals under different policies must produce identical counts.
  for (const auto kind : {RoutingPolicyKind::kFixed,
                          RoutingPolicyKind::kCostBased,
                          RoutingPolicyKind::kLottery}) {
    EddyOptions eo;
    eo.routing.kind = kind;
    eo.routing.seed = 99;
    Rig rig(3, scan_backend(), eo);
    Rng rng(1234);
    std::uint64_t results = 0;
    for (int i = 0; i < 300; ++i) {
      const auto s = static_cast<StreamId>(rng.below(3));
      const Value v1 = static_cast<Value>(rng.below(4));
      const Value v2 = static_cast<Value>(rng.below(4));
      results += rig.arrive(s, i, {v1, v2});
    }
    // Reference: recompute with fixed policy on identical input.
    EddyOptions ref_eo;
    ref_eo.routing.kind = RoutingPolicyKind::kFixed;
    Rig ref(3, scan_backend(), ref_eo);
    Rng rng2(1234);
    std::uint64_t ref_results = 0;
    for (int i = 0; i < 300; ++i) {
      const auto s = static_cast<StreamId>(rng2.below(3));
      const Value v1 = static_cast<Value>(rng2.below(4));
      const Value v2 = static_cast<Value>(rng2.below(4));
      ref_results += ref.arrive(s, i, {v1, v2});
    }
    EXPECT_EQ(results, ref_results) << "policy kind "
                                    << static_cast<int>(kind);
  }
}

TEST(EddyRouter, StatisticsRecordedPerStatePattern) {
  Rig rig(3, scan_backend());
  rig.arrive(0, 1, {1, 1});
  rig.arrive(1, 2, {1, 1});
  rig.arrive(2, 3, {1, 1});
  EXPECT_GT(rig.eddy->statistics().size(), 0u);
}

TEST(EddyRouter, TruncationGuardStopsExplosion) {
  EddyOptions eo;
  eo.max_partials_per_arrival = 10;
  Rig rig(2, scan_backend(), eo);
  for (int i = 0; i < 100; ++i) rig.arrive(0, i, {1});
  rig.arrive(1, 200, {1});
  EXPECT_GE(rig.eddy->partials_truncated(), 1u);
  EXPECT_LT(rig.eddy->results_produced(), 100u);
}

TEST(EddyRouter, BatchRoutingPreservesResults) {
  auto run = [](std::size_t batch) {
    EddyOptions eo;
    eo.decision_reuse = batch;
    Rig rig(3, scan_backend(), eo);
    Rng rng(4321);
    std::uint64_t results = 0;
    for (int i = 0; i < 400; ++i) {
      const auto s = static_cast<StreamId>(rng.below(3));
      const Value v1 = static_cast<Value>(rng.below(5));
      const Value v2 = static_cast<Value>(rng.below(5));
      results += rig.arrive(s, i, {v1, v2});
    }
    return results;
  };
  const auto single = run(1);
  EXPECT_EQ(run(8), single);
  EXPECT_EQ(run(64), single);
}

TEST(EddyRouter, BatchRoutingAmortisesDecisionCost) {
  const QuerySpec q = make_complete_join_query(3, seconds_to_micros(1000));
  auto routes_with_batch = [&](std::size_t batch) {
    CostMeter meter;
    StemOptions so;
    so.backend = IndexBackend::kScan;
    std::vector<std::unique_ptr<StemOperator>> stems;
    std::vector<StemOperator*> ptrs;
    for (StreamId s = 0; s < 3; ++s) {
      stems.push_back(std::make_unique<StemOperator>(
          s, q.layout(s), q.window(), so, model()));
      ptrs.push_back(stems.back().get());
    }
    EddyOptions eo;
    eo.decision_reuse = batch;
    EddyRouter eddy(q, std::move(ptrs), eo, &meter);
    for (int i = 0; i < 300; ++i) {
      Tuple t = testutil::make_tuple({1, 1}, 0, i, 0);
      eddy.route(stems[0]->insert(t));
    }
    return meter.routes();
  };
  const auto unbatched = routes_with_batch(1);
  const auto batched = routes_with_batch(10);
  EXPECT_GT(unbatched, 0u);
  EXPECT_LT(batched, unbatched / 4);
}

// Drives one rig tuple-at-a-time and a twin rig through
// insert_batch/route_batch with identical same-stream runs; results and
// (when metered) route charges must agree exactly.
struct BatchRun {
  StreamId stream;
  std::vector<Tuple> tuples;
};

std::vector<BatchRun> make_batch_runs(std::size_t streams, std::size_t rounds,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BatchRun> runs;
  TimeMicros ts = 0;
  TupleSeq seq = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    BatchRun run;
    run.stream = static_cast<StreamId>(rng.below(streams));
    const std::size_t k = 1 + rng.below(6);
    for (std::size_t i = 0; i < k; ++i) {
      Tuple t = testutil::make_tuple(
          {static_cast<Value>(rng.below(4)), static_cast<Value>(rng.below(4))},
          seq++, ++ts, run.stream);
      run.tuples.push_back(t);
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

TEST(EddyRouter, RouteBatchMatchesSequentialRouting) {
  for (const std::size_t reuse : {std::size_t{1}, std::size_t{8}}) {
    EddyOptions eo;
    eo.decision_reuse = reuse;
    Rig single(3, scan_backend(), eo);
    Rig batched(3, scan_backend(), eo);
    std::vector<JoinResult> single_sink, batched_sink;
    std::uint64_t single_results = 0;
    std::uint64_t batched_results = 0;
    for (const BatchRun& run : make_batch_runs(3, 120, 777)) {
      for (const Tuple& t : run.tuples) {
        single_results += single.eddy->route(
            single.stems[run.stream]->insert(t), &single_sink);
      }
      std::vector<const Tuple*> stored;
      std::vector<std::uint32_t> done(run.tuples.size(),
                                      std::uint32_t{1} << run.stream);
      batched.stems[run.stream]->insert_batch(run.tuples.data(),
                                              run.tuples.size(), stored);
      batched_results += batched.eddy->route_batch(
          stored.data(), done.data(), run.tuples.size(), &batched_sink);
    }
    EXPECT_EQ(batched_results, single_results) << "reuse " << reuse;
    EXPECT_EQ(batched_sink.size(), single_sink.size()) << "reuse " << reuse;
    // Same result multiset, keyed on member seqs (emission order within a
    // batch is level-order, not depth-first).
    auto canon = [](const std::vector<JoinResult>& sink) {
      std::vector<std::vector<TupleSeq>> keys;
      for (const JoinResult& jr : sink) {
        std::vector<TupleSeq> key;
        for (const Tuple* m : jr.members) key.push_back(m->seq);
        keys.push_back(std::move(key));
      }
      std::sort(keys.begin(), keys.end());
      return keys;
    };
    EXPECT_EQ(canon(batched_sink), canon(single_sink)) << "reuse " << reuse;
  }
}

TEST(EddyRouter, RouteBatchChargesSameRoutingCost) {
  const QuerySpec q = make_complete_join_query(3, seconds_to_micros(1000));
  auto routes_charged = [&](bool use_batch, std::size_t reuse) {
    CostMeter meter;
    StemOptions so;
    so.backend = IndexBackend::kScan;
    std::vector<std::unique_ptr<StemOperator>> stems;
    std::vector<StemOperator*> ptrs;
    for (StreamId s = 0; s < 3; ++s) {
      stems.push_back(std::make_unique<StemOperator>(
          s, q.layout(s), q.window(), so, model()));
      ptrs.push_back(stems.back().get());
    }
    EddyOptions eo;
    eo.decision_reuse = reuse;
    // Charge parity holds for deterministic policies; stats-driven ones
    // may legitimately pick different routes under the batch's level-order
    // probe sequence (documented caveat).
    eo.routing.kind = RoutingPolicyKind::kFixed;
    EddyRouter eddy(q, std::move(ptrs), eo, &meter);
    for (const BatchRun& run : make_batch_runs(3, 80, 4242)) {
      std::vector<const Tuple*> stored;
      std::vector<std::uint32_t> done(run.tuples.size(),
                                      std::uint32_t{1} << run.stream);
      stems[run.stream]->insert_batch(run.tuples.data(), run.tuples.size(),
                                      stored);
      if (use_batch) {
        eddy.route_batch(stored.data(), done.data(), run.tuples.size());
      } else {
        for (const Tuple* t : stored) eddy.route(t);
      }
    }
    return meter.routes();
  };
  for (const std::size_t reuse : {std::size_t{1}, std::size_t{10}}) {
    const auto sequential = routes_charged(false, reuse);
    EXPECT_GT(sequential, 0u);
    EXPECT_EQ(routes_charged(true, reuse), sequential) << "reuse " << reuse;
  }
}

TEST(EddyRouter, ChargesRoutingDecisions) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(10));
  CostMeter meter;
  StemOperator s0(0, q.layout(0), q.window(), scan_backend(), model());
  StemOperator s1(1, q.layout(1), q.window(), scan_backend(), model());
  EddyRouter eddy(q, {&s0, &s1}, {}, &meter);
  Tuple t = testutil::make_tuple({1}, 0, 1, 0);
  eddy.route(s0.insert(t));
  EXPECT_EQ(meter.routes(), 1u);
}

}  // namespace
}  // namespace amri::engine
