// Concurrency stress for the sharded state layer, aimed at the tsan
// preset: several prober threads issue fan-out and targeted probes (their
// fan-outs sharing one ThreadPool) while one writer thread churns the
// window (insert + erase) and periodically migrates the index shard by
// shard. The wrapper's documented contract — many probers, one mutator —
// must hold race-free for >= 10k operations, and the aggregate invariants
// must survive the storm.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "../test_util.hpp"
#include "common/rng.hpp"
#include "index/index_migrator.hpp"
#include "index/sharded_bit_index.hpp"

namespace amri::index {
namespace {

TEST(ShardedStress, ProbesRaceMigrationAndExpiry) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kProbers = 3;
  constexpr std::size_t kWriterOps = 12000;
  constexpr std::size_t kWindow = 600;
  const Value kDomain = 50;

  JoinAttributeSet jas({0, 1, 2});
  ThreadPool pool(4);
  // Null meter / memory: the cost meter is single-threaded by design, and
  // concurrent probers would race on it — the engine only meters probes
  // issued from its one driver thread.
  ShardedBitIndex idx(jas, IndexConfig({2, 2, 1}), BitMapper::hashing(3),
                      kShards, /*shard_pos=*/0, &pool);
  const IndexMigrator migrator;

  // The writer cycles through the pool FIFO, so a tuple is reused only
  // after its erase: probers may read a tuple concurrently with its erase
  // but never with a rewrite of its values.
  testutil::TuplePool tuples(4 * kWindow, 3, static_cast<int>(kDomain), 77);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> probes_run{0};
  std::atomic<std::uint64_t> fanouts_run{0};

  std::vector<std::thread> probers;
  probers.reserve(kProbers);
  for (std::size_t p = 0; p < kProbers; ++p) {
    probers.emplace_back([&, p] {
      Rng rng(1000 + p);
      std::vector<const Tuple*> out;
      while (!stop.load(std::memory_order_acquire)) {
        ProbeKey key;
        // Alternate targeted (shard attr bound) and fan-out probes.
        key.mask = rng.chance(0.5) ? AttrMask{0b001} : AttrMask{0b110};
        for (std::size_t pos = 0; pos < 3; ++pos) {
          key.values.push_back(static_cast<Value>(
              rng.below(static_cast<std::uint64_t>(kDomain))));
        }
        out.clear();
        const ProbeStats stats = idx.probe(key, out);
        EXPECT_EQ(stats.matches, out.size());
        if (idx.target_shard(key) == idx.shard_count()) {
          fanouts_run.fetch_add(1, std::memory_order_relaxed);
        }
        probes_run.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  {
    // Writer (this thread): window churn + periodic shard-by-shard
    // migrations racing the probers.
    const IndexConfig configs[] = {IndexConfig({2, 2, 1}),
                                   IndexConfig({0, 3, 2}),
                                   IndexConfig({4, 0, 1})};
    std::size_t next_config = 1;
    std::size_t head = 0;  // oldest live tuple
    std::size_t tail = 0;  // next tuple to insert
    for (std::size_t op = 0; op < kWriterOps; ++op) {
      idx.insert(tuples.at(tail % tuples.size()));
      tail = (tail + 1) % (2 * tuples.size());
      if ((tail >= head ? tail - head
                        : tail + 2 * tuples.size() - head) > kWindow) {
        idx.erase(tuples.at(head % tuples.size()));
        head = (head + 1) % (2 * tuples.size());
      }
      if (op % 1500 == 1499) {
        idx.migrate_shards(configs[next_config % 3], migrator);
        ++next_config;
      }
    }
    // Keep the state live until the probers have demonstrably raced it.
    while (probes_run.load(std::memory_order_relaxed) < 2000 ||
           fanouts_run.load(std::memory_order_relaxed) < 200) {
      std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
  }
  for (auto& t : probers) t.join();

  // The probers must have genuinely exercised both probe routes while the
  // writer was running.
  EXPECT_GT(probes_run.load(), 1000u);
  EXPECT_GT(fanouts_run.load(), 100u);
  idx.check_invariants();
  EXPECT_GT(idx.size(), 0u);
  const ShardBalance balance = idx.balance();
  EXPECT_EQ(balance.sizes.size(), kShards);
}

}  // namespace
}  // namespace amri::index
