#include "engine/query_parser.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "engine/executor.hpp"

namespace amri::engine {
namespace {

std::vector<Schema> catalog() {
  return {
      Schema("Trades", {"symbol", "venue", "price"}),
      Schema("Quotes", {"symbol", "venue", "spread"}),
      Schema("News", {"symbol", "topic"}),
  };
}

TEST(QueryParser, BasicTwoWayJoin) {
  const auto p = parse_query(
      "SELECT * FROM Trades T, Quotes Q WHERE T.symbol = Q.symbol",
      catalog());
  EXPECT_EQ(p.query.num_streams(), 2u);
  ASSERT_EQ(p.query.predicates().size(), 1u);
  const auto& pred = p.query.predicates()[0];
  EXPECT_EQ(pred.left_stream, 0u);
  EXPECT_EQ(pred.left_attr, 0u);
  EXPECT_EQ(pred.right_stream, 1u);
  EXPECT_EQ(pred.right_attr, 0u);
  EXPECT_EQ(p.catalog_ids, (std::vector<StreamId>{0, 1}));
  EXPECT_FALSE(p.agg.has_value());
  EXPECT_TRUE(p.query.projection().select_star());
}

TEST(QueryParser, CaseInsensitiveKeywordsAndNewlines) {
  const auto p = parse_query(
      "select *\nfrom Trades T, News N\nwhere T.symbol = N.symbol\n"
      "window 30",
      catalog());
  EXPECT_EQ(p.query.window(), seconds_to_micros(30));
  EXPECT_EQ(p.catalog_ids, (std::vector<StreamId>{0, 2}));
}

TEST(QueryParser, DefaultWindowApplies) {
  const auto p = parse_query(
      "SELECT * FROM Trades T, Quotes Q WHERE T.symbol = Q.symbol",
      catalog(), seconds_to_micros(7));
  EXPECT_EQ(p.query.window(), seconds_to_micros(7));
}

TEST(QueryParser, ConstantFiltersBecomeSelections) {
  const auto p = parse_query(
      "SELECT * FROM Trades T, Quotes Q "
      "WHERE T.symbol = Q.symbol AND T.price >= 100 AND Q.spread < 5",
      catalog());
  EXPECT_EQ(p.query.selection(0).size(), 1u);
  EXPECT_EQ(p.query.selection(1).size(), 1u);
  const auto& f = p.query.selection(0).predicates()[0];
  EXPECT_EQ(f.attr, 2u);
  EXPECT_EQ(f.op, CompareOp::kGe);
  EXPECT_EQ(f.constant, 100);
}

TEST(QueryParser, ProjectionColumns) {
  const auto p = parse_query(
      "SELECT T.price, Q.spread FROM Trades T, Quotes Q "
      "WHERE T.symbol = Q.symbol",
      catalog());
  ASSERT_EQ(p.query.projection().columns().size(), 2u);
  EXPECT_EQ(p.query.projection().columns()[0].stream, 0u);
  EXPECT_EQ(p.query.projection().columns()[0].attr, 2u);
  EXPECT_EQ(p.query.projection().columns()[1].stream, 1u);
  EXPECT_EQ(p.query.projection().columns()[1].attr, 2u);
}

TEST(QueryParser, CountStarAggregate) {
  const auto p = parse_query(
      "SELECT COUNT(*) FROM Trades T, Quotes Q WHERE T.symbol = Q.symbol",
      catalog());
  ASSERT_TRUE(p.agg.has_value());
  EXPECT_EQ(*p.agg, AggFunc::kCount);
  EXPECT_FALSE(p.agg_column.has_value());
}

TEST(QueryParser, SumWithGroupBy) {
  const auto p = parse_query(
      "SELECT SUM(T.price) FROM Trades T, Quotes Q "
      "WHERE T.symbol = Q.symbol GROUP BY Q.venue",
      catalog());
  ASSERT_TRUE(p.agg.has_value());
  EXPECT_EQ(*p.agg, AggFunc::kSum);
  ASSERT_TRUE(p.agg_column.has_value());
  EXPECT_EQ(p.agg_column->stream, 0u);
  EXPECT_EQ(p.agg_column->attr, 2u);
  ASSERT_TRUE(p.group_by.has_value());
  EXPECT_EQ(p.group_by->stream, 1u);
  EXPECT_EQ(p.group_by->attr, 1u);
}

TEST(QueryParser, SelfJoinViaTwoAliases) {
  const auto p = parse_query(
      "SELECT * FROM Trades A, Trades B WHERE A.symbol = B.symbol",
      catalog());
  EXPECT_EQ(p.query.num_streams(), 2u);
  EXPECT_EQ(p.catalog_ids, (std::vector<StreamId>{0, 0}));
  EXPECT_EQ(p.query.predicates()[0].left_stream, 0u);
  EXPECT_EQ(p.query.predicates()[0].right_stream, 1u);
}

TEST(QueryParser, ThreeWayJoinChain) {
  const auto p = parse_query(
      "SELECT * FROM Trades T, Quotes Q, News N "
      "WHERE T.symbol = Q.symbol AND Q.venue = N.topic",
      catalog());
  EXPECT_EQ(p.query.num_streams(), 3u);
  EXPECT_EQ(p.query.predicates().size(), 2u);
  EXPECT_EQ(p.query.layout(1).jas.size(), 2u);  // Quotes joins both peers
}

TEST(QueryParser, RejectsAttributeInTwoJoinPredicates) {
  // Chain joins reusing the same attribute (Q.symbol twice) are rejected:
  // the engine requires one predicate per state attribute.
  EXPECT_THROW(parse_query("SELECT * FROM Trades T, Quotes Q, News N "
                           "WHERE T.symbol = Q.symbol AND "
                           "Q.symbol = N.symbol",
                           catalog()),
               std::invalid_argument);
}

TEST(QueryParser, Errors) {
  const auto cat = catalog();
  EXPECT_THROW(parse_query("FROM Trades T", cat), std::invalid_argument);
  EXPECT_THROW(parse_query("SELECT *", cat), std::invalid_argument);
  EXPECT_THROW(parse_query("SELECT * FROM Missing M", cat),
               std::invalid_argument);
  EXPECT_THROW(parse_query("SELECT * FROM Trades T, Trades T", cat),
               std::invalid_argument);  // duplicate alias
  EXPECT_THROW(
      parse_query("SELECT * FROM Trades T, Quotes Q WHERE T.nope = Q.symbol",
                  cat),
      std::invalid_argument);  // unknown attribute
  EXPECT_THROW(
      parse_query("SELECT * FROM Trades T, Quotes Q WHERE T.price < Q.spread",
                  cat),
      std::invalid_argument);  // non-equi join
  EXPECT_THROW(
      parse_query("SELECT * FROM Trades T, Quotes Q WHERE T.price = T.venue",
                  cat),
      std::invalid_argument);  // join within one stream
  EXPECT_THROW(parse_query("SELECT SUM(*) FROM Trades T", cat),
               std::invalid_argument);  // only COUNT takes '*'
  EXPECT_THROW(
      parse_query("SELECT * FROM Trades T WHERE T.price > 1 garbage", cat),
      std::invalid_argument);  // trailing token
}

TEST(QueryParser, ParsedQueryRunsEndToEnd) {
  const auto p = parse_query(
      "SELECT T.price FROM Trades T, Quotes Q "
      "WHERE T.symbol = Q.symbol AND T.price >= 50 WINDOW 100",
      catalog());
  // Drive the executor directly with the parsed spec.
  struct OneShot final : TupleSource {
    std::vector<Tuple> tuples;
    std::size_t pos = 0;
    std::optional<Tuple> next() override {
      if (pos >= tuples.size()) return std::nullopt;
      return tuples[pos++];
    }
  } src;
  Tuple trade;
  trade.stream = 0;
  trade.ts = 1;
  trade.values = {7, 1, 120};  // symbol=7, venue=1, price=120
  Tuple quote;
  quote.stream = 1;
  quote.ts = 2;
  quote.values = {7, 1, 3};  // symbol=7, spread=3
  src.tuples = {trade, quote};

  ExecutorOptions opts;
  opts.duration = seconds_to_micros(10);
  opts.stem.backend = IndexBackend::kScan;
  opts.collect_rows = true;
  Executor ex(p.query, opts);
  const auto r = ex.run(src);
  EXPECT_EQ(r.outputs, 1u);
  ASSERT_EQ(r.rows.size(), 1u);
  ASSERT_EQ(r.rows[0].size(), 1u);
  EXPECT_EQ(r.rows[0][0], 120);  // projected T.price
}

}  // namespace
}  // namespace amri::engine
