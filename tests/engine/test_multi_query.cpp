#include "engine/multi_query.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "../test_util.hpp"

namespace amri::engine {
namespace {

class ScriptedSource final : public TupleSource {
 public:
  explicit ScriptedSource(std::vector<Tuple> tuples)
      : tuples_(tuples.begin(), tuples.end()) {}
  std::optional<Tuple> next() override {
    if (tuples_.empty()) return std::nullopt;
    Tuple t = tuples_.front();
    tuples_.pop_front();
    return t;
  }

 private:
  std::deque<Tuple> tuples_;
};

Tuple mk(StreamId s, double ts_sec, std::initializer_list<Value> vals) {
  return testutil::make_tuple(vals, 0, seconds_to_micros(ts_sec), s);
}

// Two 2-stream queries over schemas with two attributes each:
//   Q0: S0.a0 == S1.a0     Q1: S0.a1 == S1.a1
std::vector<QuerySpec> two_queries(TimeMicros window) {
  std::vector<Schema> schemas = {Schema("S0", {"x", "y"}),
                                 Schema("S1", {"u", "v"})};
  std::vector<QuerySpec> queries;
  queries.emplace_back(schemas, std::vector<JoinPredicate>{{0, 0, 1, 0}},
                       window);
  queries.emplace_back(schemas, std::vector<JoinPredicate>{{0, 1, 1, 1}},
                       window);
  return queries;
}

ExecutorOptions base_options(IndexBackend backend = IndexBackend::kScan) {
  ExecutorOptions o;
  o.duration = seconds_to_micros(100);
  o.stem.backend = backend;
  return o;
}

/// Zero modelled costs: the virtual clock tracks arrival timestamps only,
/// so runs with different index backends (or query counts) see identical
/// window contents — required for exact-equality comparisons.
ExecutorOptions zero_cost_options(IndexBackend backend = IndexBackend::kScan) {
  ExecutorOptions o = base_options(backend);
  o.costs = CostParams{0, 0, 0, 0, 0, 0};
  return o;
}

TEST(MultiQuery, SharedJasIsUnionOfQueries) {
  MultiQueryExecutor ex(two_queries(seconds_to_micros(50)), base_options());
  // Each query joins on one attribute; the shared state indexes both.
  EXPECT_EQ(ex.shared_jas(0).size(), 2u);
  EXPECT_EQ(ex.shared_jas(1).size(), 2u);
  EXPECT_EQ(ex.num_queries(), 2u);
}

TEST(MultiQuery, PerQueryResultsIndependent) {
  MultiQueryExecutor ex(two_queries(seconds_to_micros(50)), base_options());
  // S0(7, 1), S1(7, 2): Q0 matches (a0: 7==7), Q1 does not (a1: 1!=2).
  ScriptedSource src({mk(0, 1, {7, 1}), mk(1, 2, {7, 2}),
                      // S0(3, 9), S1(4, 9): only Q1 matches.
                      mk(0, 3, {3, 9}), mk(1, 4, {4, 9})});
  const auto r = ex.run(src);
  ASSERT_EQ(r.per_query_outputs.size(), 2u);
  EXPECT_EQ(r.per_query_outputs[0], 1u);
  EXPECT_EQ(r.per_query_outputs[1], 1u);
  EXPECT_EQ(r.combined.outputs, 2u);
}

TEST(MultiQuery, MatchesTwoSingleQueryRuns) {
  // The multi-query totals must equal running each query alone over the
  // same arrivals.
  std::vector<Tuple> arrivals;
  Rng rng(77);
  for (int i = 0; i < 400; ++i) {
    arrivals.push_back(mk(static_cast<StreamId>(rng.below(2)), 0.1 * i,
                          {static_cast<Value>(rng.below(5)),
                           static_cast<Value>(rng.below(5))}));
  }
  const auto queries = two_queries(seconds_to_micros(20));

  std::vector<std::uint64_t> alone;
  for (const QuerySpec& q : queries) {
    ScriptedSource src(arrivals);
    Executor ex(q, zero_cost_options());
    alone.push_back(ex.run(src).outputs);
  }

  ScriptedSource src(arrivals);
  MultiQueryExecutor multi(queries, zero_cost_options());
  const auto r = multi.run(src);
  EXPECT_EQ(r.per_query_outputs[0], alone[0]);
  EXPECT_EQ(r.per_query_outputs[1], alone[1]);
}

TEST(MultiQuery, AmriBackendAgreesWithScan) {
  std::vector<Tuple> arrivals;
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    arrivals.push_back(mk(static_cast<StreamId>(rng.below(2)), 0.05 * i,
                          {static_cast<Value>(rng.below(6)),
                           static_cast<Value>(rng.below(6))}));
  }
  const auto queries = two_queries(seconds_to_micros(10));

  ScriptedSource scan_src(arrivals);
  MultiQueryExecutor scan_ex(queries, zero_cost_options(IndexBackend::kScan));
  const auto scan_r = scan_ex.run(scan_src);

  auto amri_opts = zero_cost_options(IndexBackend::kAmri);
  amri_opts.stem.initial_config = index::IndexConfig({2, 2});
  ScriptedSource amri_src(arrivals);
  MultiQueryExecutor amri_ex(queries, amri_opts);
  const auto amri_r = amri_ex.run(amri_src);

  EXPECT_EQ(scan_r.per_query_outputs, amri_r.per_query_outputs);
}

TEST(MultiQuery, SharedIndexSeesUnionOfAccessPatterns) {
  const auto queries = two_queries(seconds_to_micros(60));
  auto opts = base_options(IndexBackend::kAmri);
  opts.stem.initial_config = index::IndexConfig({2, 2});
  tuner::TunerOptions t;
  t.reassess_every = 100;
  t.theta = 0.05;
  t.optimizer.bit_budget = 6;
  opts.stem.amri_tuner = t;
  MultiQueryExecutor ex(queries, opts);

  std::vector<Tuple> arrivals;
  Rng rng(5);
  for (int i = 0; i < 1500; ++i) {
    arrivals.push_back(mk(static_cast<StreamId>(rng.below(2)), 0.01 * i,
                          {static_cast<Value>(rng.below(8)),
                           static_cast<Value>(rng.below(8))}));
  }
  ScriptedSource src(std::move(arrivals));
  ex.run(src);
  // Both queries generated probes; the shared tuner saw patterns binding
  // attribute 0 (Q0) and attribute 1 (Q1), so the tuned IC keeps bits on
  // both (neither query alone would justify that).
  for (const auto& stem : ex.stems()) {
    const auto* cfg = stem->current_config();
    ASSERT_NE(cfg, nullptr);
    EXPECT_GT(cfg->bits(0), 0) << "stream " << stem->stream();
    EXPECT_GT(cfg->bits(1), 0) << "stream " << stem->stream();
  }
}

TEST(MultiQuery, PerQuerySelections) {
  auto queries = two_queries(seconds_to_micros(50));
  // Q0 only accepts S0 tuples with x >= 5; Q1 accepts everything.
  queries[0].set_selection(0, Selection({{0, CompareOp::kGe, 5}}));
  MultiQueryExecutor ex(queries, base_options());
  ScriptedSource src({mk(0, 1, {3, 9}), mk(1, 2, {3, 9})});
  const auto r = ex.run(src);
  EXPECT_EQ(r.per_query_outputs[0], 0u);  // filtered for Q0
  EXPECT_EQ(r.per_query_outputs[1], 1u);  // joined for Q1
}

// Randomized sweep: N queries over shared streams with random predicates
// and selections; multi-query per-query outputs must equal running each
// query alone (zero-cost runs so window contents coincide).
class MultiQueryRandom : public ::testing::TestWithParam<int> {};

TEST_P(MultiQueryRandom, EqualsIndependentRuns) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 11);
  const std::size_t n_attrs = 3;
  std::vector<std::string> names;
  for (std::size_t a = 0; a < n_attrs; ++a) {
    names.push_back("a" + std::to_string(a));
  }
  const std::vector<Schema> schemas = {Schema("L", names),
                                       Schema("R", names)};
  const TimeMicros window = seconds_to_micros(5 + rng.below(20));

  const std::size_t n_queries = 2 + rng.below(2);
  std::vector<QuerySpec> queries;
  for (std::size_t qi = 0; qi < n_queries; ++qi) {
    const auto attr = static_cast<AttrId>(rng.below(n_attrs));
    queries.emplace_back(schemas,
                         std::vector<JoinPredicate>{{0, attr, 1, attr}},
                         window);
    if (rng.chance(0.5)) {
      queries.back().set_selection(
          static_cast<StreamId>(rng.below(2)),
          Selection({{static_cast<AttrId>(rng.below(n_attrs)),
                      CompareOp::kGe, static_cast<Value>(rng.below(4))}}));
    }
  }

  std::vector<Tuple> arrivals;
  for (int i = 0; i < 500; ++i) {
    Tuple t;
    t.stream = static_cast<StreamId>(rng.below(2));
    t.ts = seconds_to_micros(0.05 * i);
    t.seq = static_cast<TupleSeq>(i);
    for (std::size_t a = 0; a < n_attrs; ++a) {
      t.values.push_back(static_cast<Value>(rng.below(6)));
    }
    arrivals.push_back(std::move(t));
  }

  std::vector<std::uint64_t> alone;
  for (const QuerySpec& q : queries) {
    ScriptedSource src(arrivals);
    Executor ex(q, zero_cost_options());
    alone.push_back(ex.run(src).outputs);
  }
  ScriptedSource src(arrivals);
  MultiQueryExecutor multi(queries, zero_cost_options(IndexBackend::kAmri));
  const auto r = multi.run(src);
  ASSERT_EQ(r.per_query_outputs.size(), alone.size());
  for (std::size_t qi = 0; qi < alone.size(); ++qi) {
    EXPECT_EQ(r.per_query_outputs[qi], alone[qi])
        << "seed=" << GetParam() << " query=" << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiQueryRandom, ::testing::Range(1, 11));

TEST(MultiQuery, SingleQueryDegeneratesToExecutor) {
  std::vector<Tuple> arrivals;
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    arrivals.push_back(mk(static_cast<StreamId>(rng.below(2)), 0.1 * i,
                          {static_cast<Value>(rng.below(4)),
                           static_cast<Value>(rng.below(4))}));
  }
  auto queries = two_queries(seconds_to_micros(15));
  queries.erase(queries.begin() + 1, queries.end());
  ScriptedSource src1(arrivals);
  Executor single(queries[0], zero_cost_options());
  const auto single_r = single.run(src1);
  ScriptedSource src2(arrivals);
  MultiQueryExecutor multi(queries, zero_cost_options());
  const auto multi_r = multi.run(src2);
  EXPECT_EQ(single_r.outputs, multi_r.combined.outputs);
}

}  // namespace
}  // namespace amri::engine
