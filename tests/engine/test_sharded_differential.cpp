// End-to-end differential equivalence: the sharded executor must be
// observationally identical to the single-index executor — same join-result
// multiset, same final tuner IC choice per state, same migration count —
// across shard counts {1, 2, 4, 7}, including mid-run reconfigurations.
//
// The comparison is exact because every divergence channel is pinned:
//   * arrivals are slow relative to the modelled probe cost, so the clock
//     re-synchronises to each arrival timestamp even though the sharded
//     index charges slightly different probe work, and the window length is
//     deliberately NOT a multiple of the arrival spacing — no tuple ever
//     sits within micro-second cost jitter of the expiry horizon, so both
//     runs expire identical tuple sets;
//   * routing is kFixed, so probe statistics cannot alter routes;
//   * the assessors are SRIA / DIA, whose per-shard snapshots merge
//     additively into exactly the unpartitioned assessment — the tuner sees
//     bit-identical frequent-pattern tables and makes bit-identical IC
//     decisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <string>
#include <vector>

#include "../test_util.hpp"
#include "common/rng.hpp"
#include "engine/executor.hpp"

namespace amri::engine {
namespace {

class ScriptedSource final : public TupleSource {
 public:
  explicit ScriptedSource(std::vector<Tuple> tuples)
      : tuples_(tuples.begin(), tuples.end()) {}
  std::optional<Tuple> next() override {
    if (tuples_.empty()) return std::nullopt;
    Tuple t = tuples_.front();
    tuples_.pop_front();
    return t;
  }

 private:
  std::deque<Tuple> tuples_;
};

/// What a run exposes for equivalence comparison.
struct Observed {
  std::uint64_t outputs = 0;
  /// Canonical join-result multiset: per result, the seq of each member
  /// tuple by stream, the whole list sorted.
  std::vector<std::vector<TupleSeq>> results;
  std::vector<std::string> final_ics;
  std::vector<std::uint64_t> migrations;
  std::uint64_t total_migrations = 0;
};

struct Scenario {
  std::string name;
  std::size_t streams = 2;
  std::size_t num_attrs = 1;     ///< join attributes per tuple
  std::size_t tuples = 1500;
  std::uint64_t seed = 1;
  Value domain = 6;
  assessment::AssessorKind assessor = assessment::AssessorKind::kSria;
  tuner::StatsRetention retention = tuner::StatsRetention::kReset;
  /// Arrival mix drift: fraction of arrivals from stream 0 in the first
  /// half vs the second (shifts each state's access-pattern mix so the
  /// tuner reconfigures mid-run).
  double first_half_s0 = 0.8;
  double second_half_s0 = 0.2;
};

std::vector<Tuple> make_arrivals(const Scenario& sc) {
  std::vector<Tuple> tuples;
  Rng rng(sc.seed);
  for (std::size_t i = 0; i < sc.tuples; ++i) {
    Tuple t;
    const double s0_share =
        i < sc.tuples / 2 ? sc.first_half_s0 : sc.second_half_s0;
    t.stream = rng.chance(s0_share)
                   ? 0
                   : static_cast<StreamId>(1 + rng.below(sc.streams - 1));
    // 50 ms apart: far more virtual time than any probe's modelled cost,
    // so the executor idles to each arrival and expiry horizons align.
    t.ts = seconds_to_micros(0.05 * static_cast<double>(i));
    t.seq = static_cast<TupleSeq>(i);
    for (std::size_t a = 0; a < sc.num_attrs; ++a) {
      t.values.push_back(
          static_cast<Value>(rng.below(static_cast<std::uint64_t>(sc.domain))));
    }
    tuples.push_back(t);
  }
  return tuples;
}

Observed run_scenario(const Scenario& sc, std::size_t shards) {
  // 30.025 s: half an arrival gap past 30 s, so the expiry horizon falls
  // mid-gap between arrival timestamps (see the header comment).
  const QuerySpec q =
      make_complete_join_query(sc.streams, seconds_to_micros(30.025));
  ExecutorOptions o;
  o.duration = seconds_to_micros(0.05 * static_cast<double>(sc.tuples) + 10);
  o.sample_every = seconds_to_micros(20);
  o.stem.backend = IndexBackend::kAmri;
  o.stem.shards = shards;
  o.eddy.routing.kind = RoutingPolicyKind::kFixed;
  tuner::TunerOptions topts;
  topts.assessor = sc.assessor;
  topts.retention = sc.retention;
  topts.theta = 0.1;
  topts.reassess_every = 150;  // several decisions -> mid-run migrations
  topts.optimizer.bit_budget = 4;
  topts.optimizer.max_bits_per_attr = 3;
  o.stem.amri_tuner = topts;

  Observed obs;
  o.on_result = [&obs](const JoinResult& jr) {
    std::vector<TupleSeq> key;
    key.reserve(jr.members.size());
    for (const Tuple* m : jr.members) key.push_back(m->seq);
    obs.results.push_back(std::move(key));
  };

  Executor ex(q, o);
  ScriptedSource src(make_arrivals(sc));
  const RunResult r = ex.run(src);

  obs.outputs = r.outputs;
  std::sort(obs.results.begin(), obs.results.end());
  for (const StateSummary& s : r.states) {
    obs.migrations.push_back(s.migrations);
    obs.total_migrations += s.migrations;
    EXPECT_EQ(s.shards, shards == 0 ? 1 : shards);
  }
  // Compare the tuner's final IC choice itself, not the backend name (the
  // sharded backend's name carries an "xN" shard-count suffix).
  for (const auto& stem : ex.stems()) {
    const index::IndexConfig* ic = stem->current_config();
    EXPECT_NE(ic, nullptr);
    obs.final_ics.push_back(ic ? ic->to_string() : "<none>");
    stem->check_invariants();
  }
  return obs;
}

void expect_equivalent(const Scenario& sc) {
  const Observed base = run_scenario(sc, /*shards=*/1);
  // The scenario must actually exercise mid-run reconfiguration, otherwise
  // equivalence would hold vacuously.
  EXPECT_GT(base.total_migrations, 0u) << sc.name;
  EXPECT_GT(base.outputs, 0u) << sc.name;
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4},
                                   std::size_t{7}}) {
    const Observed got = run_scenario(sc, shards);
    EXPECT_EQ(got.outputs, base.outputs) << sc.name << " x" << shards;
    EXPECT_EQ(got.results, base.results) << sc.name << " x" << shards;
    EXPECT_EQ(got.final_ics, base.final_ics) << sc.name << " x" << shards;
    EXPECT_EQ(got.migrations, base.migrations) << sc.name << " x" << shards;
  }
}

TEST(ShardedDifferential, TwoStreamJoinSria) {
  Scenario sc;
  sc.name = "two-stream-sria";
  sc.streams = 2;
  sc.num_attrs = 1;
  sc.seed = 101;
  expect_equivalent(sc);
}

TEST(ShardedDifferential, ThreeStreamDriftSria) {
  Scenario sc;
  sc.name = "three-stream-drift-sria";
  sc.streams = 3;
  sc.num_attrs = 2;
  sc.tuples = 1800;
  sc.seed = 202;
  sc.domain = 5;
  sc.retention = tuner::StatsRetention::kKeep;
  expect_equivalent(sc);
}

// Note kReset / kKeep retention only: kDecay truncates counts per entry,
// so decaying N shard tables is not bit-identical to decaying the merged
// table (off by < N per entry) — documented in docs/architecture.md.
TEST(ShardedDifferential, ThreeStreamDiaDrift) {
  Scenario sc;
  sc.name = "three-stream-dia-drift";
  sc.streams = 3;
  sc.num_attrs = 2;
  sc.tuples = 1600;
  sc.seed = 303;
  sc.domain = 7;
  sc.assessor = assessment::AssessorKind::kDia;
  sc.retention = tuner::StatsRetention::kReset;
  sc.first_half_s0 = 0.7;
  sc.second_half_s0 = 0.15;
  expect_equivalent(sc);
}

}  // namespace
}  // namespace amri::engine
