#include "engine/query.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace amri::engine {
namespace {

TEST(QuerySpec, CompleteJoinQueryShape) {
  const QuerySpec q = make_complete_join_query(4, seconds_to_micros(10));
  EXPECT_EQ(q.num_streams(), 4u);
  EXPECT_EQ(q.predicates().size(), 6u);  // K4: C(4,2)
  EXPECT_EQ(q.window(), seconds_to_micros(10));
  EXPECT_EQ(q.all_streams_mask(), 0b1111u);
  for (StreamId s = 0; s < 4; ++s) {
    EXPECT_EQ(q.schema(s).num_attrs(), 3u);
    EXPECT_EQ(q.layout(s).jas.size(), 3u);  // 3 join attrs per state
  }
}

TEST(QuerySpec, PairedAttributeNamesMatch) {
  const QuerySpec q = make_complete_join_query(3, 1000);
  // Predicate between streams i<j uses attribute "jij" on both sides.
  for (const JoinPredicate& p : q.predicates()) {
    EXPECT_EQ(q.schema(p.left_stream).attr_name(p.left_attr),
              q.schema(p.right_stream).attr_name(p.right_attr));
  }
}

TEST(QuerySpec, LayoutPeersPointBack) {
  const QuerySpec q = make_complete_join_query(4, 1000);
  for (StreamId s = 0; s < 4; ++s) {
    const StateLayout& layout = q.layout(s);
    for (std::size_t p = 0; p < layout.peers.size(); ++p) {
      const auto& peer = layout.peers[p];
      EXPECT_NE(peer.stream, s);
      // The peer's layout must reference us symmetrically.
      const StateLayout& peer_layout = q.layout(peer.stream);
      const std::size_t back = peer_layout.jas.position_of(peer.attr);
      ASSERT_LT(back, peer_layout.jas.size());
      EXPECT_EQ(peer_layout.peers[back].stream, s);
      EXPECT_EQ(peer_layout.peers[back].attr, layout.jas.tuple_attr(p));
    }
  }
}

TEST(QuerySpec, PatternForDoneMask) {
  const QuerySpec q = make_complete_join_query(4, 1000);
  // State 3's JAS positions peer with streams 0, 1, 2 in order.
  const StateLayout& l3 = q.layout(3);
  EXPECT_EQ(l3.pattern_for(0b0001), 0b001u);  // only stream 0 joined
  EXPECT_EQ(l3.pattern_for(0b0011), 0b011u);  // streams 0 and 1
  EXPECT_EQ(l3.pattern_for(0b0111), 0b111u);  // all three peers
  EXPECT_EQ(l3.pattern_for(0b1000), 0u);      // only itself: nothing binds
}

TEST(QuerySpec, TwoStreamQuery) {
  const QuerySpec q = make_complete_join_query(2, 500);
  EXPECT_EQ(q.predicates().size(), 1u);
  EXPECT_EQ(q.layout(0).jas.size(), 1u);
  EXPECT_EQ(q.layout(1).pattern_for(0b01), 0b1u);
}

TEST(QuerySpec, CustomPredicates) {
  std::vector<Schema> schemas = {
      Schema("S", {"x", "y"}),
      Schema("T", {"u"}),
  };
  std::vector<JoinPredicate> preds = {{0, 1, 1, 0}};  // S.y == T.u
  const QuerySpec q(std::move(schemas), std::move(preds), 100);
  EXPECT_EQ(q.layout(0).jas.size(), 1u);
  EXPECT_EQ(q.layout(0).jas.tuple_attr(0), 1u);
  EXPECT_EQ(q.layout(1).jas.tuple_attr(0), 0u);
}

TEST(QuerySpec, RejectsUnknownStream) {
  std::vector<Schema> schemas = {Schema("S", {"x"})};
  std::vector<JoinPredicate> preds = {{0, 0, 5, 0}};
  EXPECT_THROW(QuerySpec(std::move(schemas), std::move(preds), 1),
               std::invalid_argument);
}

TEST(QuerySpec, RejectsAttributeInTwoPredicates) {
  std::vector<Schema> schemas = {
      Schema("A", {"x"}), Schema("B", {"y"}), Schema("C", {"z"})};
  // A.x joins both B.y and C.z: ambiguous peer for A's position 0.
  std::vector<JoinPredicate> preds = {{0, 0, 1, 0}, {0, 0, 2, 0}};
  EXPECT_THROW(QuerySpec(std::move(schemas), std::move(preds), 1),
               std::invalid_argument);
}

TEST(QuerySpec, DuplicatePredicateIsIdempotent) {
  std::vector<Schema> schemas = {Schema("A", {"x"}), Schema("B", {"y"})};
  std::vector<JoinPredicate> preds = {{0, 0, 1, 0}, {0, 0, 1, 0}};
  const QuerySpec q(std::move(schemas), std::move(preds), 1);
  EXPECT_EQ(q.layout(0).jas.size(), 1u);
}

}  // namespace
}  // namespace amri::engine
