#include "engine/operators.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace amri::engine {
namespace {

TEST(FilterPredicate, AllOperators) {
  const Tuple t = testutil::make_tuple({10});
  EXPECT_TRUE((FilterPredicate{0, CompareOp::kEq, 10}).matches(t));
  EXPECT_FALSE((FilterPredicate{0, CompareOp::kEq, 11}).matches(t));
  EXPECT_TRUE((FilterPredicate{0, CompareOp::kNe, 11}).matches(t));
  EXPECT_TRUE((FilterPredicate{0, CompareOp::kLt, 11}).matches(t));
  EXPECT_FALSE((FilterPredicate{0, CompareOp::kLt, 10}).matches(t));
  EXPECT_TRUE((FilterPredicate{0, CompareOp::kLe, 10}).matches(t));
  EXPECT_TRUE((FilterPredicate{0, CompareOp::kGt, 9}).matches(t));
  EXPECT_TRUE((FilterPredicate{0, CompareOp::kGe, 10}).matches(t));
  EXPECT_FALSE((FilterPredicate{0, CompareOp::kGe, 11}).matches(t));
}

TEST(CompareOpName, AllNamed) {
  EXPECT_EQ(compare_op_name(CompareOp::kEq), "=");
  EXPECT_EQ(compare_op_name(CompareOp::kNe), "!=");
  EXPECT_EQ(compare_op_name(CompareOp::kLt), "<");
  EXPECT_EQ(compare_op_name(CompareOp::kLe), "<=");
  EXPECT_EQ(compare_op_name(CompareOp::kGt), ">");
  EXPECT_EQ(compare_op_name(CompareOp::kGe), ">=");
}

TEST(Selection, EmptyMatchesEverything) {
  const Selection sel;
  EXPECT_TRUE(sel.empty());
  EXPECT_TRUE(sel.matches(testutil::make_tuple({1, 2, 3})));
}

TEST(Selection, ConjunctionSemantics) {
  const Selection sel({{0, CompareOp::kGe, 5}, {1, CompareOp::kLt, 10}});
  EXPECT_TRUE(sel.matches(testutil::make_tuple({7, 3})));
  EXPECT_FALSE(sel.matches(testutil::make_tuple({4, 3})));
  EXPECT_FALSE(sel.matches(testutil::make_tuple({7, 10})));
}

TEST(Selection, ChargesComparesAndShortCircuits) {
  CostMeter meter;
  const Selection sel({{0, CompareOp::kEq, 1}, {1, CompareOp::kEq, 2}});
  // First predicate fails: only one compare charged.
  sel.matches(testutil::make_tuple({9, 2}), &meter);
  EXPECT_EQ(meter.compares(), 1u);
  meter.reset_counts();
  sel.matches(testutil::make_tuple({1, 2}), &meter);
  EXPECT_EQ(meter.compares(), 2u);
}

TEST(Projection, SelectStarConcatenatesAllStreams) {
  const Projection p;
  EXPECT_TRUE(p.select_star());
  const Tuple a = testutil::make_tuple({1, 2});
  const Tuple b = testutil::make_tuple({3});
  SmallVector<const Tuple*, 8> members;
  members.push_back(&a);
  members.push_back(&b);
  const auto row = p.apply(members);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 1);
  EXPECT_EQ(row[1], 2);
  EXPECT_EQ(row[2], 3);
}

TEST(Projection, ExplicitColumns) {
  const Projection p({{1, 0}, {0, 1}});
  const Tuple a = testutil::make_tuple({1, 2});
  const Tuple b = testutil::make_tuple({3});
  SmallVector<const Tuple*, 8> members;
  members.push_back(&a);
  members.push_back(&b);
  const auto row = p.apply(members);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], 3);  // stream 1 attr 0
  EXPECT_EQ(row[1], 2);  // stream 0 attr 1
}

TEST(Projection, SelectStarSkipsNullMembers) {
  const Projection p;
  const Tuple a = testutil::make_tuple({5});
  SmallVector<const Tuple*, 8> members;
  members.push_back(&a);
  members.push_back(nullptr);
  const auto row = p.apply(members);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], 5);
}

}  // namespace
}  // namespace amri::engine
