// End-to-end latency tracing: sampled per-tuple spans must follow a tuple
// from source drain through routing hops to result emission, in both the
// tuple-at-a-time and the batched pipeline, and stay completely silent
// when sampling is off.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <string>

#include "../test_util.hpp"
#include "engine/executor.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::engine {
namespace {

class ScriptedSource final : public TupleSource {
 public:
  explicit ScriptedSource(std::vector<Tuple> tuples)
      : tuples_(tuples.begin(), tuples.end()) {}
  std::optional<Tuple> next() override {
    if (tuples_.empty()) return std::nullopt;
    Tuple t = tuples_.front();
    tuples_.pop_front();
    return t;
  }

 private:
  std::deque<Tuple> tuples_;
};

Tuple mk(StreamId s, double ts_sec, std::initializer_list<Value> vals) {
  return testutil::make_tuple(vals, 0, seconds_to_micros(ts_sec), s);
}

std::vector<Tuple> alternating_tuples(int n) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < n; ++i) {
    tuples.push_back(mk(i % 2 == 0 ? 0 : 1, i + 1.0, {i / 2}));
  }
  return tuples;
}

ExecutorOptions traced_options(telemetry::Telemetry* telemetry,
                               std::size_t trace_sample) {
  ExecutorOptions o;
  o.duration = seconds_to_micros(200);
  o.sample_every = seconds_to_micros(50);
  o.stem.backend = IndexBackend::kScan;
  o.telemetry = telemetry;
  o.trace_sample = trace_sample;
  return o;
}

/// Extracts `"key":<number>` from a span payload; -1 when absent.
std::int64_t json_int(const std::string& payload, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = payload.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(payload.c_str() + pos + needle.size(), nullptr, 10);
}

std::string json_str(const std::string& payload, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = payload.find(needle);
  if (pos == std::string::npos) return {};
  const auto start = pos + needle.size();
  return payload.substr(start, payload.find('"', start) - start);
}

struct SpanLog {
  std::map<std::int64_t, std::vector<std::string>> stages_by_span;
  int done_events = 0;
  int done_with_latency = 0;
};

SpanLog collect_spans(const telemetry::Telemetry& telemetry) {
  SpanLog log;
  for (const telemetry::Event& e : telemetry.events().snapshot()) {
    if (e.kind != telemetry::EventKind::kSpan) continue;
    const std::int64_t span = json_int(e.payload, "span");
    EXPECT_GT(span, 0) << e.payload;
    const std::string stage = json_str(e.payload, "stage");
    log.stages_by_span[span].push_back(stage);
    EXPECT_GE(json_int(e.payload, "wall_ns"), 0) << e.payload;
    if (stage == "done") {
      ++log.done_events;
      if (json_int(e.payload, "latency_ns") >= 0) ++log.done_with_latency;
    }
  }
  return log;
}

TEST(SpanTrace, EveryNthArrivalGetsArrivalAndDone) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(500));
  telemetry::Telemetry telemetry;
  ScriptedSource src(alternating_tuples(40));
  Executor ex(q, traced_options(&telemetry, 4));
  ex.run(src);

  const SpanLog log = collect_spans(telemetry);
  // 40 arrivals sampled every 4th: 10 spans, each opening with "arrival"
  // and closing with "done" carrying a wall latency.
  EXPECT_EQ(log.stages_by_span.size(), 10u);
  EXPECT_EQ(log.done_events, 10);
  EXPECT_EQ(log.done_with_latency, 10);
  for (const auto& [span, stages] : log.stages_by_span) {
    ASSERT_FALSE(stages.empty());
    EXPECT_EQ(stages.front(), "arrival") << "span " << span;
    EXPECT_EQ(stages.back(), "done") << "span " << span;
  }
}

TEST(SpanTrace, HopsRecordProbeWork) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(500));
  telemetry::Telemetry telemetry;
  ScriptedSource src(alternating_tuples(20));
  Executor ex(q, traced_options(&telemetry, 1));  // sample everything
  ex.run(src);

  int hops = 0;
  for (const telemetry::Event& e : telemetry.events().snapshot()) {
    if (e.kind != telemetry::EventKind::kSpan) continue;
    if (json_str(e.payload, "stage") != "hop") continue;
    ++hops;
    EXPECT_GE(json_int(e.payload, "probe_ns"), 0) << e.payload;
    EXPECT_GE(json_int(e.payload, "compared"), 0) << e.payload;
  }
  // Every routed tuple probes the peer STeM at least once.
  EXPECT_GT(hops, 0);
}

TEST(SpanTrace, BatchedPipelineTracesSampledTuple) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(500));
  telemetry::Telemetry telemetry;
  ScriptedSource src(alternating_tuples(40));
  ExecutorOptions o = traced_options(&telemetry, 5);
  o.batch_size = 8;
  Executor ex(q, o);
  ex.run(src);

  const SpanLog log = collect_spans(telemetry);
  EXPECT_FALSE(log.stages_by_span.empty());
  EXPECT_GT(log.done_events, 0);
  EXPECT_EQ(log.done_events, log.done_with_latency);
  for (const auto& [span, stages] : log.stages_by_span) {
    EXPECT_EQ(stages.front(), "arrival") << "span " << span;
  }
}

/// Per-span trace skeleton: the arrival's stream plus its stage sequence
/// restricted to the stages both pipelines emit per sampled arrival.
/// "hop" events are excluded by design — the eddy attaches them to one
/// active span per routed run, so their placement is batch-shape-dependent.
struct SpanSkeleton {
  StreamId stream = 0;
  std::vector<std::string> stages;
  bool operator==(const SpanSkeleton& o) const {
    return stream == o.stream && stages == o.stages;
  }
};

std::vector<SpanSkeleton> span_skeletons(
    const telemetry::Telemetry& telemetry) {
  // Span ids are allocated in begin order == drain order, and the map is
  // ordered, so iteration yields spans in the order arrivals were drained.
  std::map<std::int64_t, SpanSkeleton> by_span;
  for (const telemetry::Event& e : telemetry.events().snapshot()) {
    if (e.kind != telemetry::EventKind::kSpan) continue;
    const std::string stage = json_str(e.payload, "stage");
    if (stage == "hop") continue;
    SpanSkeleton& sk = by_span[json_int(e.payload, "span")];
    sk.stream = e.stream;
    sk.stages.push_back(stage);
  }
  std::vector<SpanSkeleton> out;
  for (auto& [span, sk] : by_span) out.push_back(std::move(sk));
  return out;
}

TEST(SpanTrace, BatchedAndUnbatchedTraceSameArrivals) {
  // Regression: the batched drain used to keep only the *first* sampled
  // arrival of each batch, so --batch-size 64 traced a different (sparser)
  // arrival set than --batch-size 1. Both paths must now sample the same
  // Nth drained arrivals and give each the same stage skeleton.
  QuerySpec q = make_complete_join_query(2, seconds_to_micros(500));
  // A WHERE filter on stream 0 so the "filtered" span shape is exercised
  // too (values cycle i % 7; value 3 is rejected).
  q.set_selection(0, Selection({FilterPredicate{0, CompareOp::kNe, 3}}));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 240; ++i) {
    tuples.push_back(mk(i % 2 == 0 ? 0 : 1, i + 1.0, {i % 7}));
  }

  auto run_with_batch = [&](std::size_t batch_size) {
    telemetry::Telemetry telemetry;
    ScriptedSource src(tuples);
    ExecutorOptions o = traced_options(&telemetry, 3);
    o.duration = seconds_to_micros(400);
    o.sample_every = seconds_to_micros(100);
    o.batch_size = batch_size;
    Executor ex(q, o);
    ex.run(src);
    return span_skeletons(telemetry);
  };

  const std::vector<SpanSkeleton> unbatched = run_with_batch(1);
  // 240 drained arrivals sampled every 3rd => 80 spans, filtered included.
  EXPECT_EQ(unbatched.size(), 80u);
  for (const std::size_t batch_size : {std::size_t{64}, std::size_t{7}}) {
    const std::vector<SpanSkeleton> batched = run_with_batch(batch_size);
    ASSERT_EQ(batched.size(), unbatched.size()) << "batch " << batch_size;
    for (std::size_t i = 0; i < unbatched.size(); ++i) {
      EXPECT_TRUE(batched[i] == unbatched[i])
          << "batch " << batch_size << ", span #" << i << ": stream "
          << static_cast<int>(batched[i].stream) << " vs "
          << static_cast<int>(unbatched[i].stream);
    }
  }
}

TEST(SpanTrace, NoSamplingMeansNoSpanEvents) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(500));
  telemetry::Telemetry telemetry;
  ScriptedSource src(alternating_tuples(20));
  Executor ex(q, traced_options(&telemetry, 0));
  ex.run(src);

  int span_events = 0;
  for (const telemetry::Event& e : telemetry.events().snapshot()) {
    if (e.kind == telemetry::EventKind::kSpan) ++span_events;
  }
  EXPECT_EQ(span_events, 0);
}

TEST(SpanTrace, SpanLatencyHistogramPopulated) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(500));
  telemetry::Telemetry telemetry;
  ScriptedSource src(alternating_tuples(30));
  Executor ex(q, traced_options(&telemetry, 3));
  ex.run(src);

  const auto* hist = telemetry.metrics().find_histogram("span.latency_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 10u);
  EXPECT_GT(hist->percentile(0.5), 0.0);
}

}  // namespace
}  // namespace amri::engine
