#include "engine/stem.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace amri::engine {
namespace {

QuerySpec query4() { return make_complete_join_query(4, seconds_to_micros(10)); }

index::CostModel model() {
  index::WorkloadParams p;
  p.lambda_d = 100;
  p.lambda_r = 100;
  p.window_units = 10;
  return index::CostModel(p);
}

StemOptions amri_options() {
  StemOptions o;
  o.backend = IndexBackend::kAmri;
  o.initial_config = index::IndexConfig({4, 4, 4});
  tuner::TunerOptions t;
  t.reassess_every = 100;
  t.optimizer.bit_budget = 12;
  t.optimizer.max_bits_per_attr = 8;
  o.amri_tuner = t;
  return o;
}

Tuple arrival(StreamId s, TimeMicros ts, std::initializer_list<Value> vals) {
  Tuple t = testutil::make_tuple(vals, 0, ts, s);
  return t;
}

TEST(StemOperator, InsertProbeExpireCycle) {
  const QuerySpec q = query4();
  StemOperator stem(1, q.layout(1), q.window(), amri_options(), model());
  stem.insert(arrival(1, seconds_to_micros(1), {5, 6, 7}));
  stem.insert(arrival(1, seconds_to_micros(2), {5, 8, 9}));
  EXPECT_EQ(stem.stored_tuples(), 2u);

  index::ProbeKey k;
  k.mask = 0b001;
  k.values = {5, 0, 0};
  std::vector<const Tuple*> out;
  stem.probe(k, out);
  EXPECT_EQ(out.size(), 2u);

  // Window is 10s: at t=11.5s the first tuple expires.
  stem.expire(seconds_to_micros(11.5));
  EXPECT_EQ(stem.stored_tuples(), 1u);
  out.clear();
  stem.probe(k, out);
  EXPECT_EQ(out.size(), 1u);

  stem.expire(seconds_to_micros(13));
  EXPECT_EQ(stem.stored_tuples(), 0u);
}

TEST(StemOperator, InsertReturnsStableStoredCopy) {
  const QuerySpec q = query4();
  StemOperator stem(0, q.layout(0), q.window(), amri_options(), model());
  const Tuple* p1 = stem.insert(arrival(0, 1, {1, 2, 3}));
  const Tuple* p2 = stem.insert(arrival(0, 2, {4, 5, 6}));
  EXPECT_EQ(p1->at(0), 1);
  EXPECT_EQ(p2->at(2), 6);
  EXPECT_NE(p1, p2);
}

TEST(StemOperator, ContinuousTuningMigratesUnderSkew) {
  const QuerySpec q = query4();
  StemOptions o = amri_options();
  o.initial_config = index::IndexConfig({12, 0, 0});
  StemOperator stem(2, q.layout(2), q.window(), o, model());
  for (int i = 0; i < 50; ++i) {
    stem.insert(arrival(2, i, {i % 10, i % 10, i % 10}));
  }
  // Flood probes that bind only JAS position 2.
  index::ProbeKey k;
  k.mask = 0b100;
  k.values = {0, 0, 3};
  std::vector<const Tuple*> out;
  for (int i = 0; i < 300; ++i) {
    out.clear();
    stem.probe(k, out);
  }
  ASSERT_NE(stem.current_config(), nullptr);
  EXPECT_GT(stem.current_config()->bits(2), 0);
  EXPECT_GE(stem.migrations(), 1u);
}

TEST(StemOperator, StaticBitmapTunesOnlyAtWarmup) {
  const QuerySpec q = query4();
  StemOptions o = amri_options();
  o.backend = IndexBackend::kStaticBitmap;
  o.initial_config = index::IndexConfig({12, 0, 0});
  StemOperator stem(0, q.layout(0), q.window(), o, model());
  index::ProbeKey k;
  k.mask = 0b010;
  k.values = {0, 1, 0};
  std::vector<const Tuple*> out;
  for (int i = 0; i < 300; ++i) stem.probe(k, out);
  // No continuous migration despite skew...
  EXPECT_EQ(stem.current_config()->bits(1), 0);
  // ...until warm-up finishes, applying the trained config once.
  stem.finish_warmup();
  EXPECT_GT(stem.current_config()->bits(1), 0);
  // After warm-up the tuner is gone: further skew changes nothing.
  index::ProbeKey k2;
  k2.mask = 0b100;
  k2.values = {0, 0, 1};
  for (int i = 0; i < 300; ++i) stem.probe(k2, out);
  EXPECT_EQ(stem.current_config()->bits(2), 0);
}

TEST(StemOperator, AccessModulesBackendServesAndTunes) {
  const QuerySpec q = query4();
  StemOptions o;
  o.backend = IndexBackend::kAccessModules;
  o.initial_modules = {0b001};
  tuner::HashTunerOptions ht;
  ht.reassess_every = 100;
  ht.max_modules = 2;
  o.module_tuner = ht;
  StemOperator stem(0, q.layout(0), q.window(), o, model());
  for (int i = 0; i < 20; ++i) stem.insert(arrival(0, i, {i, i, i}));
  index::ProbeKey k;
  k.mask = 0b110;
  k.values = {0, 3, 3};
  std::vector<const Tuple*> out;
  for (int i = 0; i < 150; ++i) {
    out.clear();
    stem.probe(k, out);
  }
  EXPECT_GE(stem.migrations(), 1u);  // module set retuned to <*,B,C>
  EXPECT_FALSE(out.empty());
}

TEST(StemOperator, ScanBackendHasNoTuner) {
  const QuerySpec q = query4();
  StemOptions o;
  o.backend = IndexBackend::kScan;
  StemOperator stem(0, q.layout(0), q.window(), o, model());
  stem.insert(arrival(0, 1, {1, 2, 3}));
  index::ProbeKey k;
  k.mask = 0b001;
  k.values = {1, 0, 0};
  std::vector<const Tuple*> out;
  for (int i = 0; i < 200; ++i) stem.probe(k, out);
  EXPECT_EQ(stem.migrations(), 0u);
  stem.finish_warmup();  // no-op, must not crash
  EXPECT_EQ(stem.probes_served(), 200u);
}

TEST(StemOperator, QuantileMapperBackend) {
  const QuerySpec q = query4();
  StemOptions o = amri_options();
  o.map_strategy = index::MapStrategy::kQuantile;
  // Skewed sample for JAS position 0 only; others fall back to hashing.
  std::vector<Value> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(i % 10 == 0 ? i : 0);
  o.quantile_samples = {sample};
  StemOperator stem(0, q.layout(0), q.window(), o, model());
  for (int i = 0; i < 100; ++i) {
    stem.insert(arrival(0, i, {i % 7, i % 5, i % 3}));
  }
  index::ProbeKey k;
  k.mask = 0b111;
  k.values = {3, 3, 0};
  std::vector<const Tuple*> out;
  stem.probe(k, out);
  for (const Tuple* t : out) {
    EXPECT_EQ(t->at(0), 3);
    EXPECT_EQ(t->at(1), 3);
    EXPECT_EQ(t->at(2), 0);
  }
  std::size_t expected = 0;
  for (int i = 0; i < 100; ++i) {
    if (i % 7 == 3 && i % 5 == 3 && i % 3 == 0) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

TEST(StemOperator, MemoryAccountsTuplesAndIndex) {
  const QuerySpec q = query4();
  MemoryTracker mem;
  CostMeter meter;
  {
    StemOperator stem(0, q.layout(0), q.window(), amri_options(), model(),
                      &meter, &mem);
    for (int i = 0; i < 100; ++i) {
      stem.insert(arrival(0, i, {i, i * 2, i * 3}));
    }
    EXPECT_GT(mem.category(MemCategory::kStateTuples), 0u);
    EXPECT_GT(mem.category(MemCategory::kIndexStructure), 0u);
    stem.expire(q.window() + seconds_to_micros(100));
    EXPECT_EQ(mem.category(MemCategory::kStateTuples), 0u);
  }
  EXPECT_EQ(mem.total(), 0u);
}

TEST(StemOperator, InvariantsHoldAcrossWindowCycle) {
  const QuerySpec q = query4();
  StemOperator stem(1, q.layout(1), q.window(), amri_options(), model());
  for (TimeMicros i = 1; i <= 300; ++i) {
    stem.insert(arrival(1, seconds_to_micros(0.05 * static_cast<double>(i)),
                        {static_cast<Value>(i % 9),
                         static_cast<Value>(i % 5),
                         static_cast<Value>(i % 3)}));
    if (i % 60 == 0) stem.check_invariants();
  }
  stem.check_invariants();
  stem.expire(seconds_to_micros(12));
  stem.check_invariants();
  stem.expire(seconds_to_micros(100));
  EXPECT_EQ(stem.stored_tuples(), 0u);
  stem.check_invariants();
}

}  // namespace
}  // namespace amri::engine
