#include "engine/aggregate.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace amri::engine {
namespace {

JoinResult make_result(const Tuple* a, const Tuple* b) {
  JoinResult r;
  r.members.push_back(a);
  r.members.push_back(b);
  return r;
}

TEST(AggregateSink, CountGlobal) {
  const Tuple a = testutil::make_tuple({1});
  const Tuple b = testutil::make_tuple({2});
  AggregateSink sink(AggFunc::kCount, {0, 0});
  for (int i = 0; i < 5; ++i) sink.consume(make_result(&a, &b));
  EXPECT_EQ(sink.consumed(), 5u);
  EXPECT_EQ(sink.group_count(), 1u);
  EXPECT_DOUBLE_EQ(sink.total(), 5.0);
}

TEST(AggregateSink, SumMinMaxAvgOverValueColumn) {
  const Tuple a1 = testutil::make_tuple({10});
  const Tuple a2 = testutil::make_tuple({30});
  const Tuple b = testutil::make_tuple({0});
  for (const auto& [func, expected] :
       {std::pair{AggFunc::kSum, 40.0}, std::pair{AggFunc::kMin, 10.0},
        std::pair{AggFunc::kMax, 30.0}, std::pair{AggFunc::kAvg, 20.0}}) {
    AggregateSink sink(func, {0, 0});
    sink.consume(make_result(&a1, &b));
    sink.consume(make_result(&a2, &b));
    EXPECT_DOUBLE_EQ(sink.total(), expected) << agg_func_name(func);
  }
}

TEST(AggregateSink, GroupByColumn) {
  // Group by stream 1's attribute 0; sum stream 0's attribute 0.
  const Tuple a1 = testutil::make_tuple({5});
  const Tuple a2 = testutil::make_tuple({7});
  const Tuple g1 = testutil::make_tuple({100});
  const Tuple g2 = testutil::make_tuple({200});
  AggregateSink sink(AggFunc::kSum, {0, 0}, OutputColumn{1, 0});
  sink.consume(make_result(&a1, &g1));
  sink.consume(make_result(&a2, &g1));
  sink.consume(make_result(&a1, &g2));
  EXPECT_EQ(sink.group_count(), 2u);
  EXPECT_DOUBLE_EQ(sink.value_of(100), 12.0);
  EXPECT_DOUBLE_EQ(sink.value_of(200), 5.0);
  EXPECT_DOUBLE_EQ(sink.value_of(999), 0.0);
}

TEST(AggregateSink, AvgIsCountWeightedAcrossGroups) {
  const Tuple a1 = testutil::make_tuple({0});
  const Tuple a2 = testutil::make_tuple({10});
  const Tuple g1 = testutil::make_tuple({1});
  const Tuple g2 = testutil::make_tuple({2});
  AggregateSink sink(AggFunc::kAvg, {0, 0}, OutputColumn{1, 0});
  sink.consume(make_result(&a1, &g1));
  sink.consume(make_result(&a2, &g2));
  sink.consume(make_result(&a2, &g2));
  // Global avg over 3 results: (0 + 10 + 10) / 3.
  EXPECT_NEAR(sink.total(), 20.0 / 3.0, 1e-9);
}

TEST(AggregateSink, ConsumeAllAndReset) {
  const Tuple a = testutil::make_tuple({3});
  const Tuple b = testutil::make_tuple({0});
  std::vector<JoinResult> results = {make_result(&a, &b),
                                     make_result(&a, &b)};
  AggregateSink sink(AggFunc::kCount, {0, 0});
  sink.consume_all(results);
  EXPECT_EQ(sink.consumed(), 2u);
  sink.reset();
  EXPECT_EQ(sink.consumed(), 0u);
  EXPECT_EQ(sink.group_count(), 0u);
  EXPECT_DOUBLE_EQ(sink.total(), 0.0);
}

TEST(AggregateSink, EmptyStateValues) {
  AggState st;
  EXPECT_DOUBLE_EQ(st.value(AggFunc::kCount), 0.0);
  EXPECT_DOUBLE_EQ(st.value(AggFunc::kMin), 0.0);
  EXPECT_DOUBLE_EQ(st.value(AggFunc::kMax), 0.0);
  EXPECT_DOUBLE_EQ(st.value(AggFunc::kAvg), 0.0);
}

TEST(AggFuncName, AllNamed) {
  EXPECT_EQ(agg_func_name(AggFunc::kCount), "COUNT");
  EXPECT_EQ(agg_func_name(AggFunc::kSum), "SUM");
  EXPECT_EQ(agg_func_name(AggFunc::kMin), "MIN");
  EXPECT_EQ(agg_func_name(AggFunc::kMax), "MAX");
  EXPECT_EQ(agg_func_name(AggFunc::kAvg), "AVG");
}

TEST(AggregateSink, NegativeValues) {
  const Tuple a1 = testutil::make_tuple({-5});
  const Tuple a2 = testutil::make_tuple({3});
  const Tuple b = testutil::make_tuple({0});
  AggregateSink sink(AggFunc::kMin, {0, 0});
  sink.consume(make_result(&a1, &b));
  sink.consume(make_result(&a2, &b));
  EXPECT_DOUBLE_EQ(sink.total(), -5.0);
}

}  // namespace
}  // namespace amri::engine
