#include "engine/executor.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "../test_util.hpp"

namespace amri::engine {
namespace {

/// Scripted tuple source for deterministic tests.
class ScriptedSource final : public TupleSource {
 public:
  explicit ScriptedSource(std::vector<Tuple> tuples)
      : tuples_(tuples.begin(), tuples.end()) {}
  std::optional<Tuple> next() override {
    if (tuples_.empty()) return std::nullopt;
    Tuple t = tuples_.front();
    tuples_.pop_front();
    return t;
  }

 private:
  std::deque<Tuple> tuples_;
};

Tuple mk(StreamId s, double ts_sec, std::initializer_list<Value> vals) {
  return testutil::make_tuple(vals, 0, seconds_to_micros(ts_sec), s);
}

ExecutorOptions base_options() {
  ExecutorOptions o;
  o.duration = seconds_to_micros(100);
  o.sample_every = seconds_to_micros(10);
  o.stem.backend = IndexBackend::kScan;
  return o;
}

TEST(Executor, CountsJoinResults) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(50));
  ScriptedSource src({mk(0, 1, {7}), mk(1, 2, {7}), mk(1, 3, {8}),
                      mk(0, 4, {8})});
  Executor ex(q, base_options());
  const RunResult r = ex.run(src);
  EXPECT_EQ(r.outputs, 2u);  // (7,7) and (8,8)
  EXPECT_EQ(r.arrivals, 4u);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.died_at.has_value());
}

TEST(Executor, WindowExpiryPreventsStaleJoins) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(5));
  // Second tuple arrives 30s later: the first has expired.
  ScriptedSource src({mk(0, 1, {7}), mk(1, 31, {7})});
  Executor ex(q, base_options());
  const RunResult r = ex.run(src);
  EXPECT_EQ(r.outputs, 0u);
}

TEST(Executor, ClockAdvancesThroughIdlePeriods) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(5));
  ScriptedSource src({mk(0, 1, {1}), mk(1, 90, {1})});
  ExecutorOptions o = base_options();
  Executor ex(q, o);
  ex.run(src);
  EXPECT_GE(ex.clock().now(), seconds_to_micros(90));
}

TEST(Executor, SamplesThroughputCurve) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(200));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 90; ++i) {
    tuples.push_back(mk(i % 2 == 0 ? 0 : 1, i + 1.0, {i / 2}));
  }
  ScriptedSource src(std::move(tuples));
  Executor ex(q, base_options());
  const RunResult r = ex.run(src);
  ASSERT_GE(r.samples.size(), 5u);
  // Monotone time and outputs.
  for (std::size_t i = 1; i < r.samples.size(); ++i) {
    EXPECT_GE(r.samples[i].t, r.samples[i - 1].t);
    EXPECT_GE(r.samples[i].outputs, r.samples[i - 1].outputs);
  }
  EXPECT_EQ(r.samples.back().outputs, r.outputs);
  EXPECT_EQ(r.outputs_at(seconds_to_micros(100)), r.outputs);
}

TEST(Executor, MemoryBudgetKillsTheRun) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(1000));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 5000; ++i) {
    tuples.push_back(mk(0, i * 0.01, {i}));
  }
  ScriptedSource src(std::move(tuples));
  ExecutorOptions o = base_options();
  o.duration = seconds_to_micros(60);
  o.memory_budget = 40 * 1024;  // tiny: the window store exceeds this
  Executor ex(q, o);
  const RunResult r = ex.run(src);
  ASSERT_TRUE(r.died_at.has_value());
  EXPECT_FALSE(r.completed);
  EXPECT_GT(r.peak_memory, o.memory_budget);
}

TEST(Executor, WarmupTrainsThenResetsMetrics) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(500));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 400; ++i) {
    tuples.push_back(mk(i % 2 == 0 ? 0 : 1, 0.5 * i, {i % 5}));
  }
  ScriptedSource src(std::move(tuples));
  ExecutorOptions o = base_options();
  o.warmup = seconds_to_micros(50);
  o.duration = seconds_to_micros(100);
  o.stem.backend = IndexBackend::kStaticBitmap;
  o.stem.initial_config = index::IndexConfig({0});
  tuner::TunerOptions t;
  t.optimizer.bit_budget = 4;
  t.optimizer.max_bits_per_attr = 4;
  o.stem.amri_tuner = t;
  Executor ex(q, o);
  const RunResult r = ex.run(src);
  // The static backend received a trained (non-zero) config at warm-up.
  ASSERT_EQ(r.states.size(), 2u);
  EXPECT_NE(r.states[0].final_index.find("bit_address"), std::string::npos);
  for (const auto& s : ex.stems()) {
    ASSERT_NE(s->current_config(), nullptr);
    EXPECT_GT(s->current_config()->total_bits(), 0);
  }
  // Samples are relative to measurement start.
  ASSERT_FALSE(r.samples.empty());
  EXPECT_EQ(r.samples.front().t, 0);
}

TEST(Executor, BacklogAccumulatesWhenOverloaded) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(100));
  // A flood of same-timestamp arrivals with expensive scans: the clock
  // races ahead of the (already-past) arrival schedule.
  std::vector<Tuple> tuples;
  for (int i = 0; i < 3000; ++i) tuples.push_back(mk(0, 0.001 * i, {1}));
  ScriptedSource src(std::move(tuples));
  ExecutorOptions o = base_options();
  o.duration = seconds_to_micros(2);
  o.costs.insert_cost_us = 2000.0;  // brutally slow inserts
  Executor ex(q, o);
  const RunResult r = ex.run(src);
  EXPECT_GT(r.arrivals_dropped, 0u);
  EXPECT_LT(r.arrivals, 3000u);
}

TEST(Executor, DeterministicAcrossRuns) {
  const QuerySpec q = make_complete_join_query(3, seconds_to_micros(60));
  auto make_tuples = [] {
    std::vector<Tuple> tuples;
    Rng rng(5);
    for (int i = 0; i < 600; ++i) {
      Tuple t;
      t.stream = static_cast<StreamId>(rng.below(3));
      t.ts = seconds_to_micros(0.1 * i);
      t.seq = static_cast<TupleSeq>(i);
      t.values.push_back(static_cast<Value>(rng.below(6)));
      t.values.push_back(static_cast<Value>(rng.below(6)));
      tuples.push_back(t);
    }
    return tuples;
  };
  ExecutorOptions o = base_options();
  o.stem.backend = IndexBackend::kAmri;
  o.stem.initial_config = index::IndexConfig({2, 2});
  ScriptedSource src1(make_tuples());
  ScriptedSource src2(make_tuples());
  Executor ex1(q, o);
  Executor ex2(q, o);
  const RunResult r1 = ex1.run(src1);
  const RunResult r2 = ex2.run(src2);
  EXPECT_EQ(r1.outputs, r2.outputs);
  EXPECT_EQ(r1.arrivals, r2.arrivals);
  EXPECT_EQ(r1.charged_us, r2.charged_us);
}

TEST(Executor, StateSummariesPopulated) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(50));
  ScriptedSource src({mk(0, 1, {7}), mk(1, 2, {7})});
  Executor ex(q, base_options());
  const RunResult r = ex.run(src);
  ASSERT_EQ(r.states.size(), 2u);
  EXPECT_EQ(r.states[0].stream, 0u);
  EXPECT_EQ(r.states[1].stream, 1u);
  EXPECT_EQ(r.states[0].final_index, "scan");
  EXPECT_GT(r.states[0].probes + r.states[1].probes, 0u);
}

}  // namespace
}  // namespace amri::engine
