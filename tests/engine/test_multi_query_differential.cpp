// Differential equivalence for multi-query shared execution on the unified
// run-loop core (engine/run_loop.hpp):
//
//   * a MultiQueryExecutor over ONE query must be observationally identical
//     to the single-query Executor — same outputs, result multiset, cost
//     charges, routing decisions, per-state tuner outcomes and memory peak
//     — across the full shards × batch-size × engine grid (the sink is the
//     only moving part; the core is shared by construction);
//   * attribute-disjoint queries through the shared states must produce
//     exactly the per-query outputs of N independent single-query runs, on
//     every grid point (sub-array carving, wall visibility and per-query
//     assessor attribution must not leak results across queries);
//   * overlapping-JAS queries must produce the same per-query outputs on
//     every grid point as on the tuple-at-a-time virtual path (batched and
//     wall multi-query routing are new code; arrival-major routing is the
//     reference);
//   * the per-(query, shard) assessment grid must merge into exactly the
//     unpartitioned assessment for the exact kinds (SRIA/DIA) and stay
//     within the documented epsilon for the compressing kinds, and the
//     merged answer must be invariant to how the queries' request
//     substreams interleave — the fixed-merged-assessment decision
//     invariance the shared tuner relies on.
//
// All engine-level comparisons run with zero modelled costs so the virtual
// clock tracks arrival timestamps only and every grid point sees identical
// window contents (the established differential-suite technique).
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "../test_util.hpp"
#include "assessment/snapshot.hpp"
#include "common/rng.hpp"
#include "engine/multi_query.hpp"
#include "telemetry/telemetry.hpp"

namespace amri::engine {
namespace {

class ScriptedSource final : public TupleSource {
 public:
  explicit ScriptedSource(std::vector<Tuple> tuples)
      : tuples_(tuples.begin(), tuples.end()) {}
  std::optional<Tuple> next() override {
    if (tuples_.empty()) return std::nullopt;
    Tuple t = tuples_.front();
    tuples_.pop_front();
    return t;
  }

 private:
  std::deque<Tuple> tuples_;
};

/// One grid point of the feature matrix the unified core must serve.
struct GridPoint {
  std::size_t shards = 1;
  std::size_t batch = 1;
  EngineMode engine = EngineMode::kVirtual;
  std::string label() const {
    return "shards=" + std::to_string(shards) +
           " batch=" + std::to_string(batch) +
           (engine == EngineMode::kWall ? " engine=wall" : " engine=virtual");
  }
};

std::vector<GridPoint> feature_grid() {
  return {{1, 1, EngineMode::kVirtual},
          {1, 4, EngineMode::kVirtual},
          {2, 1, EngineMode::kVirtual},
          {2, 4, EngineMode::kVirtual},
          {1, 4, EngineMode::kWall},
          {2, 4, EngineMode::kWall}};
}

/// Zero modelled costs + deterministic routing + an always-on AMRI tuner:
/// the adaptive machinery runs (assessment, epochs, migrations) without
/// cost-dependent divergence between grid points.
ExecutorOptions grid_options(const GridPoint& gp, std::size_t num_attrs) {
  ExecutorOptions o;
  o.duration = seconds_to_micros(200);
  o.sample_every = seconds_to_micros(50);
  o.costs = CostParams{0, 0, 0, 0, 0, 0};
  o.stem.backend = IndexBackend::kAmri;
  o.stem.shards = gp.shards;
  o.batch_size = gp.batch;
  o.engine = gp.engine;
  o.wall_overlap_force = true;  // exercise the overlap handoff everywhere
  o.eddy.routing.kind = RoutingPolicyKind::kFixed;
  tuner::TunerOptions topts;
  topts.reassess_every = 120;
  topts.theta = 0.1;
  topts.optimizer.bit_budget = static_cast<int>(2 * num_attrs);
  topts.optimizer.max_bits_per_attr = 2;
  o.stem.amri_tuner = topts;
  return o;
}

/// `n_queries` two-stream queries over `n_attrs`-wide schemas; query i
/// joins L.a<i> == R.a<i> (disjoint == true) or L.a<i> == R.a<i> plus
/// L.a<i+1> == R.a<i+1> (overlapping JAS between neighbouring queries).
std::vector<QuerySpec> make_queries(std::size_t n_queries, std::size_t n_attrs,
                                    bool disjoint, TimeMicros window) {
  std::vector<std::string> names;
  for (std::size_t a = 0; a < n_attrs; ++a) {
    names.push_back("a" + std::to_string(a));
  }
  const std::vector<Schema> schemas = {Schema("L", names), Schema("R", names)};
  std::vector<QuerySpec> queries;
  for (std::size_t qi = 0; qi < n_queries; ++qi) {
    std::vector<JoinPredicate> preds;
    const auto a0 = static_cast<AttrId>(qi % n_attrs);
    preds.push_back({0, a0, 1, a0});
    if (!disjoint) {
      const auto a1 = static_cast<AttrId>((qi + 1) % n_attrs);
      if (a1 != a0) preds.push_back({0, a1, 1, a1});
    }
    queries.emplace_back(schemas, std::move(preds), window);
  }
  // Distinct per-query selections so admission masks differ per arrival.
  queries[0].set_selection(0, Selection({{0, CompareOp::kGe, 1}}));
  return queries;
}

std::vector<Tuple> make_arrivals(std::size_t count, std::size_t n_attrs,
                                 Value domain, std::uint64_t seed) {
  std::vector<Tuple> arrivals;
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    Tuple t;
    t.stream = static_cast<StreamId>(rng.below(2));
    // 50 ms apart — the zero-cost clock idles to each arrival, so window
    // contents are identical on every grid point.
    t.ts = seconds_to_micros(0.05 * static_cast<double>(i));
    t.seq = static_cast<TupleSeq>(i);
    for (std::size_t a = 0; a < n_attrs; ++a) {
      t.values.push_back(
          static_cast<Value>(rng.below(static_cast<std::uint64_t>(domain))));
    }
    arrivals.push_back(std::move(t));
  }
  return arrivals;
}

/// Canonical join-result multiset: per result, member seqs by stream.
std::vector<std::vector<TupleSeq>> result_multiset(
    std::vector<std::vector<TupleSeq>> results) {
  std::sort(results.begin(), results.end());
  return results;
}

// ---------------------------------------------------------------------------
// MultiQueryExecutor(1 query) ≡ Executor, bit-for-bit, on every grid point.
// ---------------------------------------------------------------------------

TEST(MultiQueryDifferential, SingleQueryMatchesExecutorExactly) {
  const std::size_t n_attrs = 2;
  const auto queries =
      make_queries(1, n_attrs, /*disjoint=*/false, seconds_to_micros(30.025));
  const auto arrivals = make_arrivals(1200, n_attrs, 5, 17);

  for (const GridPoint& gp : feature_grid()) {
    auto run_one = [&](auto&& make_run) {
      std::vector<std::vector<TupleSeq>> results;
      ExecutorOptions o = grid_options(gp, n_attrs);
      o.on_result = [&results](const JoinResult& jr) {
        std::vector<TupleSeq> key;
        key.reserve(jr.members.size());
        for (const Tuple* m : jr.members) key.push_back(m->seq);
        results.push_back(std::move(key));
      };
      RunResult r = make_run(o);
      return std::pair(std::move(r), result_multiset(std::move(results)));
    };

    auto [single, single_results] = run_one([&](ExecutorOptions o) {
      ScriptedSource src(arrivals);
      Executor ex(queries[0], std::move(o));
      return ex.run(src);
    });
    auto [multi, multi_results] = run_one([&](ExecutorOptions o) {
      ScriptedSource src(arrivals);
      MultiQueryExecutor ex(queries, std::move(o));
      MultiRunResult mr = ex.run(src);
      EXPECT_EQ(mr.per_query_outputs.size(), 1u) << gp.label();
      if (!mr.per_query_outputs.empty()) {
        EXPECT_EQ(mr.per_query_outputs[0], mr.combined.outputs) << gp.label();
      }
      return std::move(mr.combined);
    });

    EXPECT_EQ(multi.outputs, single.outputs) << gp.label();
    EXPECT_EQ(multi.arrivals, single.arrivals) << gp.label();
    EXPECT_EQ(multi.arrivals_filtered, single.arrivals_filtered) << gp.label();
    EXPECT_EQ(multi.arrivals_dropped, single.arrivals_dropped) << gp.label();
    EXPECT_DOUBLE_EQ(multi.charged_us, single.charged_us) << gp.label();
    EXPECT_EQ(multi.routing_decisions, single.routing_decisions) << gp.label();
    EXPECT_EQ(multi.peak_memory, single.peak_memory) << gp.label();
    EXPECT_EQ(multi_results, single_results) << gp.label();
    ASSERT_EQ(multi.states.size(), single.states.size()) << gp.label();
    for (std::size_t s = 0; s < single.states.size(); ++s) {
      EXPECT_EQ(multi.states[s].probes, single.states[s].probes)
          << gp.label() << " stream " << s;
      EXPECT_EQ(multi.states[s].migrations, single.states[s].migrations)
          << gp.label() << " stream " << s;
      EXPECT_EQ(multi.states[s].state_bytes, single.states[s].state_bytes)
          << gp.label() << " stream " << s;
      EXPECT_EQ(multi.states[s].final_index, single.states[s].final_index)
          << gp.label() << " stream " << s;
    }
    // Same sample cadence and same cumulative curve.
    ASSERT_EQ(multi.samples.size(), single.samples.size()) << gp.label();
    for (std::size_t i = 0; i < single.samples.size(); ++i) {
      EXPECT_EQ(multi.samples[i].t, single.samples[i].t) << gp.label();
      EXPECT_EQ(multi.samples[i].outputs, single.samples[i].outputs)
          << gp.label();
    }
  }
}

// ---------------------------------------------------------------------------
// Attribute-disjoint queries ≡ N independent single-query runs, per grid
// point.
// ---------------------------------------------------------------------------

TEST(MultiQueryDifferential, DisjointQueriesEqualIndependentRuns) {
  const std::size_t n_attrs = 3;
  const auto queries =
      make_queries(3, n_attrs, /*disjoint=*/true, seconds_to_micros(20.025));
  const auto arrivals = make_arrivals(900, n_attrs, 5, 29);

  for (const GridPoint& gp : feature_grid()) {
    std::vector<std::uint64_t> alone;
    for (const QuerySpec& q : queries) {
      ScriptedSource src(arrivals);
      Executor ex(q, grid_options(gp, n_attrs));
      alone.push_back(ex.run(src).outputs);
    }

    ScriptedSource src(arrivals);
    MultiQueryExecutor multi(queries, grid_options(gp, n_attrs));
    const MultiRunResult r = multi.run(src);
    ASSERT_EQ(r.per_query_outputs.size(), alone.size()) << gp.label();
    std::uint64_t sum = 0;
    for (std::size_t qi = 0; qi < alone.size(); ++qi) {
      EXPECT_EQ(r.per_query_outputs[qi], alone[qi])
          << gp.label() << " query " << qi;
      sum += r.per_query_outputs[qi];
    }
    EXPECT_EQ(r.combined.outputs, sum) << gp.label();
    // Every sample carries the per-query attribution, and the final one is
    // the run total.
    ASSERT_FALSE(r.combined.samples.empty()) << gp.label();
    for (const Sample& s : r.combined.samples) {
      ASSERT_EQ(s.per_query_outputs.size(), alone.size()) << gp.label();
    }
    EXPECT_EQ(r.combined.samples.back().per_query_outputs,
              r.per_query_outputs)
        << gp.label();
  }
}

// ---------------------------------------------------------------------------
// Overlapping-JAS queries: every grid point matches the tuple-at-a-time
// virtual reference.
// ---------------------------------------------------------------------------

TEST(MultiQueryDifferential, OverlappingQueriesGridMatchesTupleAtATime) {
  const std::size_t n_attrs = 3;
  const auto queries =
      make_queries(3, n_attrs, /*disjoint=*/false, seconds_to_micros(15.025));
  const auto arrivals = make_arrivals(900, n_attrs, 4, 41);

  const GridPoint reference{1, 1, EngineMode::kVirtual};
  ScriptedSource ref_src(arrivals);
  MultiQueryExecutor ref_ex(queries, grid_options(reference, n_attrs));
  const MultiRunResult ref = ref_ex.run(ref_src);

  for (const GridPoint& gp : feature_grid()) {
    ScriptedSource src(arrivals);
    MultiQueryExecutor ex(queries, grid_options(gp, n_attrs));
    const MultiRunResult r = ex.run(src);
    EXPECT_EQ(r.per_query_outputs, ref.per_query_outputs) << gp.label();
    EXPECT_EQ(r.combined.outputs, ref.combined.outputs) << gp.label();
  }
}

// ---------------------------------------------------------------------------
// Tuner decisions on the shared state carry per-query attribution, and the
// per-sample per-query deltas reach the telemetry sample events.
// ---------------------------------------------------------------------------

TEST(MultiQueryDifferential, TunerDecisionsCarryPerQueryShares) {
  const std::size_t n_attrs = 3;
  const auto queries =
      make_queries(2, n_attrs, /*disjoint=*/true, seconds_to_micros(30));
  const auto arrivals = make_arrivals(1500, n_attrs, 6, 7);

  telemetry::Telemetry tel;
  ExecutorOptions o = grid_options({1, 1, EngineMode::kVirtual}, n_attrs);
  o.telemetry = &tel;
  MultiQueryExecutor ex(queries, o);
  ScriptedSource src(arrivals);
  const MultiRunResult r = ex.run(src);
  EXPECT_GT(r.combined.outputs, 0u);

  std::size_t decisions_with_shares = 0;
  std::size_t samples_with_per_query = 0;
  for (const telemetry::Event& e : tel.events().snapshot()) {
    if (e.kind == telemetry::EventKind::kTunerDecision &&
        e.payload.find("\"per_query\":[") != std::string::npos &&
        e.payload.find("\"query\":1") != std::string::npos) {
      ++decisions_with_shares;
    }
    if (e.kind == telemetry::EventKind::kSample &&
        e.payload.find("\"per_query\":[") != std::string::npos) {
      ++samples_with_per_query;
    }
  }
  EXPECT_GT(decisions_with_shares, 0u)
      << "no tuner decision carried per-query request shares";
  EXPECT_GT(samples_with_per_query, 0u)
      << "no sample event carried per-query output deltas";
}

// ---------------------------------------------------------------------------
// Per-query assessment-grid merging: the merged answer equals the
// unpartitioned assessment (exact kinds), and is invariant to how the
// queries' substreams interleave (all kinds) — the property behind
// "epoch decisions are identical for a fixed merged assessment".
// ---------------------------------------------------------------------------

struct QueryStream {
  AttrMask universe = 0;
  std::size_t queries = 2;
  std::vector<AttrMask> requests;     ///< in arrival (interleaved) order
  std::vector<std::size_t> owner;     ///< query attribution per request
};

QueryStream make_query_stream(Rng& rng) {
  QueryStream qs;
  const std::size_t attrs = 2 + rng.below(3);
  qs.universe = static_cast<AttrMask>((1u << attrs) - 1);
  qs.queries = 2 + rng.below(3);  // 2..4
  const std::size_t n = 2000 + rng.below(4000);
  // Each query favours its own hot pattern — the multi-query shape: the
  // union workload is diverse even though each substream is skewed.
  std::vector<AttrMask> hot;
  for (std::size_t q = 0; q < qs.queries; ++q) {
    hot.push_back(static_cast<AttrMask>(1 + rng.below(qs.universe)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t q = rng.below(qs.queries);
    qs.owner.push_back(q);
    qs.requests.push_back(
        rng.chance(0.75) ? hot[q]
                         : static_cast<AttrMask>(1 + rng.below(qs.universe)));
  }
  return qs;
}

/// Feed the interleaved stream into per-query assessors and merge.
assessment::AssessmentSnapshot merged_by_query(
    const QueryStream& qs, assessment::AssessorKind kind,
    const assessment::AssessorParams& params,
    const std::vector<std::size_t>& order) {
  std::vector<std::unique_ptr<assessment::Assessor>> parts;
  for (std::size_t q = 0; q < qs.queries; ++q) {
    parts.push_back(assessment::make_assessor(kind, qs.universe, params));
  }
  for (const std::size_t i : order) {
    parts[qs.owner[i]]->observe(qs.requests[i]);
  }
  std::vector<assessment::AssessmentSnapshot> snaps;
  snaps.reserve(parts.size());
  for (const auto& p : parts) snaps.push_back(p->snapshot());
  return assessment::merge_snapshots(snaps);
}

void expect_identical(const std::vector<assessment::AssessedPattern>& got,
                      const std::vector<assessment::AssessedPattern>& want,
                      std::size_t round, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what << " round " << round;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].mask, want[i].mask) << what << " round " << round;
    EXPECT_EQ(got[i].count, want[i].count) << what << " round " << round;
    EXPECT_DOUBLE_EQ(got[i].frequency, want[i].frequency)
        << what << " round " << round;
  }
}

TEST(MultiQueryAssessmentMerge, ExactKindsEqualUnpartitioned) {
  for (const auto kind :
       {assessment::AssessorKind::kSria, assessment::AssessorKind::kDia}) {
    Rng rng(kind == assessment::AssessorKind::kSria ? 61 : 62);
    for (std::size_t round = 0; round < 20; ++round) {
      const QueryStream qs = make_query_stream(rng);
      auto whole =
          assessment::make_assessor(kind, qs.universe, {});
      for (const AttrMask ap : qs.requests) whole->observe(ap);
      std::vector<std::size_t> order(qs.requests.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      const auto merged = merged_by_query(qs, kind, {}, order);
      EXPECT_EQ(merged.observed, whole->observed()) << "round " << round;
      for (const double theta : {0.05, 0.15, 0.3}) {
        expect_identical(assessment::snapshot_results(merged, theta),
                         whole->results(theta), round, "exact-vs-whole");
      }
    }
  }
}

TEST(MultiQueryAssessmentMerge, MergedAnswerInvariantToInterleaving) {
  // Every kind — including the compressing, order-sensitive CSRIA/CDIA:
  // each query's substream keeps ITS internal order, so the per-query
  // tables (and hence the merged assessment and the tuner decision it
  // feeds) cannot depend on how the queries' requests interleave.
  using assessment::AssessorKind;
  for (const auto kind : {AssessorKind::kSria, AssessorKind::kCsria,
                          AssessorKind::kDia, AssessorKind::kCdiaRandom}) {
    Rng rng(100 + static_cast<std::uint64_t>(kind));
    assessment::AssessorParams params;
    params.epsilon = 0.02;
    for (std::size_t round = 0; round < 10; ++round) {
      const QueryStream qs = make_query_stream(rng);
      // Order A: arrival order. Order B: a different interleaving that
      // preserves each query's substream order — process queries
      // round-robin from per-query FIFO lists.
      std::vector<std::size_t> order_a(qs.requests.size());
      for (std::size_t i = 0; i < order_a.size(); ++i) order_a[i] = i;
      std::vector<std::deque<std::size_t>> fifo(qs.queries);
      for (std::size_t i = 0; i < qs.requests.size(); ++i) {
        fifo[qs.owner[i]].push_back(i);
      }
      std::vector<std::size_t> order_b;
      order_b.reserve(qs.requests.size());
      bool any = true;
      while (any) {
        any = false;
        for (auto& f : fifo) {
          if (f.empty()) continue;
          order_b.push_back(f.front());
          f.pop_front();
          any = true;
        }
      }
      const auto merged_a = merged_by_query(qs, kind, params, order_a);
      const auto merged_b = merged_by_query(qs, kind, params, order_b);
      EXPECT_EQ(merged_a.observed, merged_b.observed) << "round " << round;
      for (const double theta : {0.05, 0.15}) {
        expect_identical(assessment::snapshot_results(merged_a, theta),
                         assessment::snapshot_results(merged_b, theta), round,
                         "interleaving");
      }
    }
  }
}

}  // namespace
}  // namespace amri::engine
