// Failure injection and degenerate-configuration coverage (DESIGN §6):
// memory exhaustion mid-run, zero-bit ICs, empty sources, saturating
// costs, truncation limits, and row-collection edge cases.
#include <gtest/gtest.h>

#include <deque>

#include "../test_util.hpp"
#include "engine/executor.hpp"

namespace amri::engine {
namespace {

class ScriptedSource final : public TupleSource {
 public:
  explicit ScriptedSource(std::vector<Tuple> tuples)
      : tuples_(tuples.begin(), tuples.end()) {}
  std::optional<Tuple> next() override {
    if (tuples_.empty()) return std::nullopt;
    Tuple t = tuples_.front();
    tuples_.pop_front();
    return t;
  }

 private:
  std::deque<Tuple> tuples_;
};

Tuple mk(StreamId s, double ts_sec, std::initializer_list<Value> vals) {
  return testutil::make_tuple(vals, 0, seconds_to_micros(ts_sec), s);
}

TEST(FailureInjection, EmptySourceCompletesImmediately) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(10));
  ScriptedSource src({});
  ExecutorOptions o;
  o.duration = seconds_to_micros(60);
  o.stem.backend = IndexBackend::kScan;
  Executor ex(q, o);
  const auto r = ex.run(src);
  EXPECT_EQ(r.outputs, 0u);
  EXPECT_EQ(r.arrivals, 0u);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.died_at.has_value());
}

TEST(FailureInjection, ZeroBitAmriStillCorrect) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(50));
  ScriptedSource src({mk(0, 1, {7}), mk(1, 2, {7})});
  ExecutorOptions o;
  o.duration = seconds_to_micros(60);
  o.stem.backend = IndexBackend::kAmri;
  o.stem.initial_config = index::IndexConfig::zero(1);
  tuner::TunerOptions t;
  t.optimizer.bit_budget = 0;  // the optimizer may never add bits
  t.reassess_every = 1;
  o.stem.amri_tuner = t;
  Executor ex(q, o);
  const auto r = ex.run(src);
  EXPECT_EQ(r.outputs, 1u);
  for (const auto& stem : ex.stems()) {
    ASSERT_NE(stem->current_config(), nullptr);
    EXPECT_EQ(stem->current_config()->total_bits(), 0);
  }
}

TEST(FailureInjection, OomDuringWarmupReportsNegativeDeath) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(1000));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 3000; ++i) tuples.push_back(mk(0, 0.001 * i, {i}));
  ScriptedSource src(std::move(tuples));
  ExecutorOptions o;
  o.warmup = seconds_to_micros(100);
  o.duration = seconds_to_micros(100);
  o.memory_budget = 32 * 1024;
  o.stem.backend = IndexBackend::kScan;
  Executor ex(q, o);
  const auto r = ex.run(src);
  ASSERT_TRUE(r.died_at.has_value());
  EXPECT_LT(*r.died_at, 0);  // died before measurement started
  EXPECT_EQ(r.outputs, 0u);
}

TEST(FailureInjection, ExhaustedTrackerStopsFurtherWork) {
  MemoryTracker mem(100);
  mem.allocate(MemCategory::kQueue, 200);
  ASSERT_TRUE(mem.exhausted());
  // Sticky even after release: the run is dead.
  mem.release(MemCategory::kQueue, 200);
  EXPECT_TRUE(mem.exhausted());
}

TEST(FailureInjection, TruncationLimitsPartialExplosion) {
  const QuerySpec q = make_complete_join_query(3, seconds_to_micros(1000));
  std::vector<Tuple> tuples;
  // All-identical join keys: quadratic partial blow-up on the last state.
  for (int i = 0; i < 60; ++i) {
    tuples.push_back(mk(static_cast<StreamId>(i % 3), 0.1 * i, {1, 1}));
  }
  ScriptedSource src(std::move(tuples));
  ExecutorOptions o;
  o.duration = seconds_to_micros(60);
  o.stem.backend = IndexBackend::kScan;
  o.eddy.max_partials_per_arrival = 16;
  Executor ex(q, o);
  const auto r = ex.run(src);
  EXPECT_GT(ex.eddy().partials_truncated(), 0u);
  EXPECT_TRUE(r.completed);
}

TEST(FailureInjection, RowCollectionZeroCapKeepsCounting) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(50));
  ScriptedSource src({mk(0, 1, {3}), mk(1, 2, {3})});
  ExecutorOptions o;
  o.duration = seconds_to_micros(60);
  o.stem.backend = IndexBackend::kScan;
  o.collect_rows = true;
  o.max_collected_rows = 0;
  Executor ex(q, o);
  const auto r = ex.run(src);
  EXPECT_EQ(r.outputs, 1u);
  EXPECT_TRUE(r.rows.empty());
}

TEST(FailureInjection, OnResultCallbackSeesEveryResult) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(500));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 30; ++i) {
    tuples.push_back(mk(i % 2 == 0 ? 0 : 1, 1.0 * i, {i / 2}));
  }
  ScriptedSource src(std::move(tuples));
  ExecutorOptions o;
  o.duration = seconds_to_micros(1000);
  o.stem.backend = IndexBackend::kScan;
  std::uint64_t seen = 0;
  o.on_result = [&seen](const JoinResult& r) {
    ASSERT_EQ(r.members.size(), 2u);
    EXPECT_NE(r.members[0], nullptr);
    EXPECT_NE(r.members[1], nullptr);
    ++seen;
  };
  Executor ex(q, o);
  const auto r = ex.run(src);
  EXPECT_EQ(seen, r.outputs);
  EXPECT_GT(seen, 0u);
}

TEST(FailureInjection, SaturatingCostsStillTerminate) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(10));
  std::vector<Tuple> tuples;
  for (int i = 0; i < 100; ++i) tuples.push_back(mk(0, 0.01 * i, {i}));
  ScriptedSource src(std::move(tuples));
  ExecutorOptions o;
  o.duration = seconds_to_micros(1);
  o.costs.insert_cost_us = 1e6;  // one virtual second per insert
  o.stem.backend = IndexBackend::kScan;
  Executor ex(q, o);
  const auto r = ex.run(src);
  // One insert eats the whole virtual duration: at most a couple of
  // arrivals are ever processed and the run still terminates.
  EXPECT_LE(r.arrivals, 3u);
}

TEST(FailureInjection, TupleArrivingAfterDurationIgnored) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(50));
  ScriptedSource src({mk(0, 1, {5}), mk(1, 200, {5})});
  ExecutorOptions o;
  o.duration = seconds_to_micros(100);
  o.stem.backend = IndexBackend::kScan;
  Executor ex(q, o);
  const auto r = ex.run(src);
  EXPECT_EQ(r.arrivals, 1u);
  EXPECT_EQ(r.outputs, 0u);
}

TEST(FailureInjection, StaticModulesWithNoInitialModulesScansEverything) {
  const QuerySpec q = make_complete_join_query(2, seconds_to_micros(50));
  ScriptedSource src({mk(0, 1, {9}), mk(1, 2, {9})});
  ExecutorOptions o;
  o.duration = seconds_to_micros(60);
  o.stem.backend = IndexBackend::kStaticModules;
  o.stem.initial_modules = {};
  Executor ex(q, o);
  const auto r = ex.run(src);
  EXPECT_EQ(r.outputs, 1u);  // correctness survives zero modules
}

}  // namespace
}  // namespace amri::engine
