// Property test for per-shard snapshot merging (assessment/snapshot.hpp),
// fuzzed over random access-pattern streams and random shard partitions:
//   * SRIA / DIA — counts are exact and additive, so merging the per-shard
//     snapshots must reproduce the unpartitioned assessor bit-identically:
//     same snapshot entries and same results(theta), including order;
//   * CSRIA — each shard's lossy-counting table undercounts its substream
//     by at most epsilon * N_shard; summed over shards that is the
//     unpartitioned epsilon * N bound. The merged answer must have no
//     false negatives above theta + epsilon and never overcount;
//   * CDIA — compression conserves count mass, so the merged entries must
//     still sum to the merged observation total, and the merge must be
//     order-independent.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "assessment/snapshot.hpp"
#include "common/rng.hpp"

namespace amri::assessment {
namespace {

struct FuzzStream {
  AttrMask universe = 0;
  std::vector<AttrMask> requests;
  std::vector<std::size_t> owner;  ///< shard of each request
  std::size_t shards = 1;
};

/// A skewed random request stream: a handful of "hot" masks carry most of
/// the traffic (so some patterns clear theta), the rest is uniform noise.
FuzzStream make_stream(Rng& rng) {
  FuzzStream fs;
  const std::size_t attrs = 2 + rng.below(3);  // 2..4
  fs.universe = static_cast<AttrMask>((1u << attrs) - 1);
  fs.shards = 2 + rng.below(5);  // 2..6
  const std::size_t n = 2000 + rng.below(6000);
  std::vector<AttrMask> hot;
  const std::size_t hot_count = 1 + rng.below(3);
  for (std::size_t i = 0; i < hot_count; ++i) {
    hot.push_back(static_cast<AttrMask>(1 + rng.below(fs.universe)));
  }
  fs.requests.reserve(n);
  fs.owner.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const AttrMask ap =
        rng.chance(0.7) ? hot[rng.below(hot.size())]
                        : static_cast<AttrMask>(1 + rng.below(fs.universe));
    fs.requests.push_back(ap);
    fs.owner.push_back(rng.below(fs.shards));
  }
  return fs;
}

/// Feed the stream into one unpartitioned assessor and `shards` per-shard
/// assessors; return {unpartitioned, merged-per-shard} snapshots.
std::pair<AssessmentSnapshot, AssessmentSnapshot> assess_both(
    const FuzzStream& fs, AssessorKind kind, const AssessorParams& params) {
  auto whole = make_assessor(kind, fs.universe, params);
  std::vector<std::unique_ptr<Assessor>> parts;
  for (std::size_t s = 0; s < fs.shards; ++s) {
    parts.push_back(make_assessor(kind, fs.universe, params));
  }
  for (std::size_t i = 0; i < fs.requests.size(); ++i) {
    whole->observe(fs.requests[i]);
    parts[fs.owner[i]]->observe(fs.requests[i]);
  }
  std::vector<AssessmentSnapshot> snaps;
  snaps.reserve(parts.size());
  for (const auto& p : parts) snaps.push_back(p->snapshot());
  return {whole->snapshot(), merge_snapshots(snaps)};
}

std::map<AttrMask, std::uint64_t> true_counts(const FuzzStream& fs) {
  std::map<AttrMask, std::uint64_t> counts;
  for (const AttrMask ap : fs.requests) ++counts[ap];
  return counts;
}

void expect_same_patterns(const std::vector<AssessedPattern>& got,
                          const std::vector<AssessedPattern>& want,
                          std::size_t round) {
  ASSERT_EQ(got.size(), want.size()) << "round " << round;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].mask, want[i].mask) << "round " << round << " #" << i;
    EXPECT_EQ(got[i].count, want[i].count) << "round " << round << " #" << i;
    EXPECT_EQ(got[i].max_error, want[i].max_error)
        << "round " << round << " #" << i;
    EXPECT_DOUBLE_EQ(got[i].frequency, want[i].frequency)
        << "round " << round << " #" << i;
  }
}

void run_exact_kind(AssessorKind kind) {
  Rng rng(kind == AssessorKind::kSria ? 51 : 52);
  for (std::size_t round = 0; round < 30; ++round) {
    const FuzzStream fs = make_stream(rng);
    const auto [whole, merged] = assess_both(fs, kind, {});
    EXPECT_EQ(merged.observed, whole.observed) << "round " << round;
    expect_same_patterns(merged.entries, whole.entries, round);
    for (const double theta : {0.05, 0.1, 0.3}) {
      expect_same_patterns(snapshot_results(merged, theta),
                           snapshot_results(whole, theta), round);
      // snapshot_results over the whole-stream snapshot is itself the
      // assessor's results() contract, checked in the per-kind tests; here
      // the merged path must match it exactly.
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "divergence in round " << round;
    }
  }
}

TEST(SnapshotMerge, SriaMergeEqualsUnpartitioned) {
  run_exact_kind(AssessorKind::kSria);
}

TEST(SnapshotMerge, DiaMergeEqualsUnpartitioned) {
  run_exact_kind(AssessorKind::kDia);
}

TEST(SnapshotMerge, CsriaMergeKeepsLossyCountingBound) {
  Rng rng(53);
  AssessorParams params;
  params.epsilon = 0.01;
  const double theta = 0.1;
  for (std::size_t round = 0; round < 30; ++round) {
    const FuzzStream fs = make_stream(rng);
    const auto [whole, merged] = assess_both(fs, AssessorKind::kCsria, params);
    EXPECT_EQ(merged.observed, whole.observed);
    const auto truth = true_counts(fs);
    const double n = static_cast<double>(fs.requests.size());
    const auto results = snapshot_results(merged, theta);
    // Estimates never overcount, and undercount by at most epsilon * N.
    for (const AssessedPattern& p : merged.entries) {
      const auto it = truth.find(p.mask);
      ASSERT_NE(it, truth.end()) << "round " << round;
      EXPECT_LE(p.count, it->second) << "round " << round;
      EXPECT_LE(static_cast<double>(it->second - p.count), params.epsilon * n)
          << "round " << round;
    }
    // No false negatives: every pattern with true frequency >=
    // theta + epsilon must survive the strict-theta filter.
    for (const auto& [mask, count] : truth) {
      if (static_cast<double>(count) / n < theta + params.epsilon) continue;
      const bool reported =
          std::any_of(results.begin(), results.end(),
                      [m = mask](const AssessedPattern& p) {
                        return p.mask == m;
                      });
      EXPECT_TRUE(reported) << "round " << round << " mask " << mask;
    }
    if (::testing::Test::HasFailure()) {
      FAIL() << "divergence in round " << round;
    }
  }
}

TEST(SnapshotMerge, CdiaMergeConservesMassAndIsOrderIndependent) {
  Rng rng(54);
  AssessorParams params;
  params.epsilon = 0.02;
  for (std::size_t round = 0; round < 20; ++round) {
    const FuzzStream fs = make_stream(rng);
    auto whole = make_assessor(AssessorKind::kCdiaHighestCount, fs.universe,
                               params);
    std::vector<std::unique_ptr<Assessor>> parts;
    for (std::size_t s = 0; s < fs.shards; ++s) {
      parts.push_back(make_assessor(AssessorKind::kCdiaHighestCount,
                                    fs.universe, params));
    }
    for (std::size_t i = 0; i < fs.requests.size(); ++i) {
      whole->observe(fs.requests[i]);
      parts[fs.owner[i]]->observe(fs.requests[i]);
    }
    std::vector<AssessmentSnapshot> snaps;
    for (const auto& p : parts) snaps.push_back(p->snapshot());
    const AssessmentSnapshot merged = merge_snapshots(snaps);
    // Mass conservation survives the merge: retained counts still sum to
    // the total observation count, exactly as in each shard sketch.
    std::uint64_t mass = 0;
    for (const AssessedPattern& e : merged.entries) mass += e.count;
    EXPECT_EQ(mass, merged.observed) << "round " << round;
    EXPECT_EQ(merged.observed, whole->observed()) << "round " << round;
    // The merge is a per-mask sum: shard order must not matter.
    std::reverse(snaps.begin(), snaps.end());
    const AssessmentSnapshot reversed = merge_snapshots(snaps);
    expect_same_patterns(reversed.entries, merged.entries, round);
    expect_same_patterns(snapshot_results(reversed, 0.1),
                         snapshot_results(merged, 0.1), round);
    // Result masks stay within the universe. (The lattice root, mask 0, is
    // a legitimate result: rolled-up residual mass can clear theta there.)
    for (const AssessedPattern& p : snapshot_results(merged, 0.1)) {
      EXPECT_EQ(p.mask & ~fs.universe, 0u) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace amri::assessment
