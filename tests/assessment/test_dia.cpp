#include "assessment/dia.hpp"

#include <gtest/gtest.h>

#include "assessment/sria.hpp"
#include "common/rng.hpp"

namespace amri::assessment {
namespace {

TEST(Dia, CountsMatchObservations) {
  Dia d(0b111);
  for (int i = 0; i < 5; ++i) d.observe(0b101);
  d.observe(0b010);
  EXPECT_EQ(d.observed(), 6u);
  EXPECT_EQ(d.table_size(), 2u);
}

// Paper §V: "DIA's and SRIA's results are equal, because both approaches
// share the same code base, use the same SRIA table, and do not reduce any
// nodes."
TEST(Dia, ResultsIdenticalToSria) {
  Dia d(0b111);
  Sria s(0b111);
  Rng rng(44);
  for (int i = 0; i < 10000; ++i) {
    const auto m = static_cast<AttrMask>(rng.below(8));
    d.observe(m);
    s.observe(m);
  }
  for (const double theta : {0.0, 0.05, 0.1, 0.2, 0.5}) {
    const auto rd = d.results(theta);
    const auto rs = s.results(theta);
    ASSERT_EQ(rd.size(), rs.size()) << "theta=" << theta;
    for (std::size_t i = 0; i < rd.size(); ++i) {
      EXPECT_EQ(rd[i].mask, rs[i].mask);
      EXPECT_EQ(rd[i].count, rs[i].count);
    }
  }
}

TEST(Dia, LatticeExposesLeafStructure) {
  Dia d(0b111);
  d.observe(0b001);
  d.observe(0b011);
  EXPECT_FALSE(d.lattice().is_leaf(0b001));
  EXPECT_TRUE(d.lattice().is_leaf(0b011));
}

TEST(Dia, ResetClears) {
  Dia d(0b11);
  d.observe(0b01);
  d.reset();
  EXPECT_EQ(d.observed(), 0u);
  EXPECT_EQ(d.table_size(), 0u);
}

TEST(Dia, FactoryName) {
  const auto a = make_assessor(AssessorKind::kDia, 0b111);
  EXPECT_EQ(a->name(), "DIA");
}

TEST(Dia, InvariantsHoldUnderLoad) {
  Dia d(0b111);
  Rng rng(10);
  for (int i = 0; i < 20000; ++i) {
    d.observe(static_cast<AttrMask>(rng.below(8)));
  }
  d.check_invariants();
  d.decay(0.25);
  d.check_invariants();
  d.reset();
  d.check_invariants();
}

}  // namespace
}  // namespace amri::assessment
