#include "assessment/cdia.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace amri::assessment {
namespace {

TEST(Cdia, NamesByPolicy) {
  Cdia r(0b111, 0.01, stats::CombinePolicy::kRandom);
  Cdia h(0b111, 0.01, stats::CombinePolicy::kHighestCount);
  EXPECT_EQ(r.name(), "CDIA-random");
  EXPECT_EQ(h.name(), "CDIA-hc");
}

TEST(Cdia, FrequentPatternReported) {
  Cdia c(0b111, 0.005, stats::CombinePolicy::kHighestCount);
  Rng rng(7);
  for (int i = 0; i < 30000; ++i) {
    c.observe(rng.uniform01() < 0.6 ? 0b111
                                    : static_cast<AttrMask>(rng.below(8)));
  }
  const auto res = c.results(0.2);
  ASSERT_FALSE(res.empty());
  EXPECT_EQ(res[0].mask, 0b111u);
  EXPECT_GT(res[0].frequency, 0.5);
}

TEST(Cdia, TableStaysCompactUnderDiversePatterns) {
  Cdia c(0xFFF, 0.01, stats::CombinePolicy::kHighestCount);  // 4096 patterns
  Rng rng(8);
  for (int i = 0; i < 200000; ++i) {
    c.observe(static_cast<AttrMask>(rng.below(4096)));
  }
  EXPECT_LT(c.table_size(), 4096u);
}

// The decisive difference vs CSRIA (paper §IV-D2): the mass of deleted
// patterns is preserved in ancestors instead of vanishing.
TEST(Cdia, SubThresholdMassSurfacesInParent) {
  Cdia c(0b111, 0.02, stats::CombinePolicy::kHighestCount);
  Rng rng(9);
  const int n = 50000;
  // Three sibling patterns sharing attribute A, each ~4% — individually
  // below theta=10%, together 12%.
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    AttrMask m;
    if (u < 0.04) m = 0b011;       // <A,B,*>
    else if (u < 0.08) m = 0b101;  // <A,*,C>
    else if (u < 0.12) m = 0b001;  // <A,*,*>
    else m = 0b110;                // <*,B,C> 88%
    c.observe(m);
  }
  const auto res = c.results(0.1);
  // <*,B,C> obviously reported; the A-mass must also surface somewhere in
  // the A-chain (<A,*,*> or an ancestor holding its mass).
  bool a_chain = false;
  for (const auto& r : res) {
    if (r.mask == 0b001 || r.mask == 0) a_chain = true;
  }
  EXPECT_TRUE(a_chain);
}

TEST(Cdia, ObservedAndResetBehaviour) {
  Cdia c(0b11, 0.1, stats::CombinePolicy::kRandom, 5);
  for (int i = 0; i < 42; ++i) c.observe(0b01);
  EXPECT_EQ(c.observed(), 42u);
  c.reset();
  EXPECT_EQ(c.observed(), 0u);
  EXPECT_EQ(c.table_size(), 0u);
}

TEST(Cdia, FactoryCreatesBothPolicies) {
  AssessorParams p;
  p.epsilon = 0.05;
  p.seed = 11;
  const auto r = make_assessor(AssessorKind::kCdiaRandom, 0b111, p);
  const auto h = make_assessor(AssessorKind::kCdiaHighestCount, 0b111, p);
  EXPECT_EQ(r->name(), "CDIA-random");
  EXPECT_EQ(h->name(), "CDIA-hc");
  auto* cr = dynamic_cast<Cdia*>(r.get());
  ASSERT_NE(cr, nullptr);
  EXPECT_EQ(cr->policy(), stats::CombinePolicy::kRandom);
  EXPECT_DOUBLE_EQ(cr->epsilon(), 0.05);
}

TEST(ToPatternFrequencies, Renormalises) {
  const std::vector<AssessedPattern> in = {
      {0b001, 30, 0, 0.3}, {0b010, 10, 0, 0.1}};
  const auto out = to_pattern_frequencies(in);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].frequency, 0.75);
  EXPECT_DOUBLE_EQ(out[1].frequency, 0.25);
}

TEST(ToPatternFrequencies, EmptyInput) {
  EXPECT_TRUE(to_pattern_frequencies({}).empty());
}

}  // namespace
}  // namespace amri::assessment
