// Statistics decay: aging preserves relative frequencies, lets new hot
// patterns overtake stale ones, and drops rounded-to-zero entries —
// across all four assessment methods.
#include <gtest/gtest.h>

#include "assessment/assessor.hpp"
#include "common/rng.hpp"

namespace amri::assessment {
namespace {

std::unique_ptr<Assessor> make(AssessorKind kind) {
  AssessorParams p;
  p.epsilon = 0.01;
  return make_assessor(kind, 0b111, p);
}

const AssessorKind kAllKinds[] = {
    AssessorKind::kSria, AssessorKind::kCsria, AssessorKind::kDia,
    AssessorKind::kCdiaRandom, AssessorKind::kCdiaHighestCount};

TEST(Decay, PreservesRelativeFrequencies) {
  for (const auto kind : kAllKinds) {
    const auto a = make(kind);
    for (int i = 0; i < 3000; ++i) a->observe(0b001);
    for (int i = 0; i < 1000; ++i) a->observe(0b010);
    a->decay(0.5);
    const auto res = a->results(0.1);
    ASSERT_GE(res.size(), 2u) << assessor_kind_name(kind);
    EXPECT_EQ(res[0].mask, 0b001u);
    EXPECT_NEAR(res[0].frequency, 0.75, 0.05) << assessor_kind_name(kind);
    EXPECT_NEAR(res[1].frequency, 0.25, 0.05) << assessor_kind_name(kind);
  }
}

TEST(Decay, HalvesObservationTotals) {
  for (const auto kind : kAllKinds) {
    const auto a = make(kind);
    for (int i = 0; i < 1000; ++i) a->observe(0b100);
    a->decay(0.5);
    EXPECT_NEAR(static_cast<double>(a->observed()), 500.0, 5.0)
        << assessor_kind_name(kind);
  }
}

TEST(Decay, NewPatternOvertakesStaleOne) {
  for (const auto kind : kAllKinds) {
    const auto a = make(kind);
    // Old regime: 0b001 hot.
    for (int i = 0; i < 5000; ++i) a->observe(0b001);
    a->decay(0.1);  // aggressive aging at the regime change
    // New regime: 0b100 hot, fewer absolute observations than the old one.
    for (int i = 0; i < 2000; ++i) a->observe(0b100);
    const auto res = a->results(0.3);
    ASSERT_FALSE(res.empty()) << assessor_kind_name(kind);
    EXPECT_EQ(res[0].mask, 0b100u)
        << assessor_kind_name(kind) << " still dominated by stale stats";
  }
}

TEST(Decay, TinyCountsDropOut) {
  for (const auto kind : {AssessorKind::kSria, AssessorKind::kCsria}) {
    const auto a = make(kind);
    a->observe(0b001);  // count 1
    for (int i = 0; i < 100; ++i) a->observe(0b010);
    a->decay(0.5);  // count 1 * 0.5 -> 0: entry dropped
    EXPECT_EQ(a->table_size(), 1u) << assessor_kind_name(kind);
  }
}

TEST(Decay, RepeatedDecayEmptiesTables) {
  for (const auto kind : kAllKinds) {
    const auto a = make(kind);
    for (int i = 0; i < 64; ++i) a->observe(0b011);
    for (int i = 0; i < 10; ++i) a->decay(0.5);
    EXPECT_EQ(a->table_size(), 0u) << assessor_kind_name(kind);
  }
}

}  // namespace
}  // namespace amri::assessment
