// Property tests over all assessment methods (parameterized sweep):
//   P1. No false negatives: every pattern with true frequency >= theta is
//       represented in the answer — directly (SRIA/CSRIA/DIA) or with its
//       mask present after rollup (CDIA).
//   P2. Reported frequencies never exceed 1 and counts never exceed N.
//   P3. Compact methods retain (far) fewer entries than the pattern space
//       under adversarial uniform workloads.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "assessment/assessor.hpp"
#include "common/rng.hpp"

namespace amri::assessment {
namespace {

struct SweepCase {
  AssessorKind kind;
  double epsilon;
  double theta;
  std::uint64_t seed;
};

class AssessorSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AssessorSweep, GuaranteesHold) {
  const SweepCase& sc = GetParam();
  const AttrMask universe = 0b11111;  // 32 patterns
  AssessorParams params;
  params.epsilon = sc.epsilon;
  params.seed = sc.seed;
  const auto assessor = make_assessor(sc.kind, universe, params);

  // Workload: 3 hot patterns (20%, 15%, 12%), remainder spread uniformly.
  Rng rng(sc.seed * 31 + 7);
  std::map<AttrMask, std::uint64_t> truth;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    AttrMask m;
    if (u < 0.20) m = 0b00011;
    else if (u < 0.35) m = 0b10100;
    else if (u < 0.47) m = 0b00001;
    else m = static_cast<AttrMask>(rng.below(32));
    ++truth[m];
    assessor->observe(m);
  }
  ASSERT_EQ(assessor->observed(), static_cast<std::uint64_t>(n));

  const auto res = assessor->results(sc.theta);
  std::set<AttrMask> reported;
  for (const auto& r : res) {
    reported.insert(r.mask);
    // P2: sane counts and frequencies.
    EXPECT_LE(r.count, static_cast<std::uint64_t>(n));
    EXPECT_GE(r.frequency, 0.0);
    EXPECT_LE(r.frequency, 1.0);
  }

  // P1: all truly-hot patterns present. CSRIA reports on *estimated*
  // frequencies which undershoot by up to epsilon, so its guarantee only
  // covers patterns above theta + epsilon.
  const double p1_bar = sc.kind == AssessorKind::kCsria
                            ? sc.theta + sc.epsilon
                            : sc.theta;
  for (const auto& [mask, count] : truth) {
    const double f = static_cast<double>(count) / n;
    if (f >= p1_bar) {
      EXPECT_TRUE(reported.count(mask))
          << assessor->name() << " missed mask " << mask << " at f=" << f;
    }
  }

  // P3: nobody exceeds the pattern space. (True compaction below the
  // space size needs per-pattern frequency < epsilon; see the dedicated
  // compactness test below for that regime.)
  EXPECT_LE(assessor->table_size(), 32u);
}

// Compact methods shed entries when the tail falls below epsilon: with a
// 12-attribute universe (4096 patterns) and epsilon = 1%, the retained
// tables must stay orders of magnitude below the pattern space while the
// exact methods (SRIA/DIA) materialise nearly all of it.
TEST(AssessorCompactness, CompactMethodsShedColdTail) {
  const AttrMask universe = 0xFFF;
  AssessorParams params;
  params.epsilon = 0.01;
  const auto kinds = {AssessorKind::kSria, AssessorKind::kCsria,
                      AssessorKind::kCdiaRandom,
                      AssessorKind::kCdiaHighestCount};
  Rng rng(5);
  std::vector<AttrMask> workload;
  const int n = 150000;
  workload.reserve(n);
  for (int i = 0; i < n; ++i) {
    workload.push_back(rng.uniform01() < 0.3
                           ? AttrMask{0x00F}
                           : static_cast<AttrMask>(rng.below(4096)));
  }
  for (const auto kind : kinds) {
    const auto assessor = make_assessor(kind, universe, params);
    for (const AttrMask m : workload) assessor->observe(m);
    if (kind == AssessorKind::kSria) {
      EXPECT_GT(assessor->table_size(), 3000u);
    } else if (kind == AssessorKind::kCsria) {
      // Lossy counting: (1/eps) * log(eps * N) ~ 730.
      EXPECT_LT(assessor->table_size(), 800u) << assessor->name();
    } else {
      // CDIA's bound is h times looser (h = 13 lattice levels) because
      // merged mass props up ancestors; still far below the 4096 space.
      EXPECT_LT(assessor->table_size(), 2500u) << assessor->name();
    }
    // Hot pattern retained in all methods.
    bool hot = false;
    for (const auto& r : assessor->results(0.2)) {
      if (r.mask == 0x00F) hot = true;
    }
    EXPECT_TRUE(hot) << assessor->name();
  }
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  const AssessorKind kinds[] = {
      AssessorKind::kSria, AssessorKind::kCsria, AssessorKind::kDia,
      AssessorKind::kCdiaRandom, AssessorKind::kCdiaHighestCount};
  for (const auto kind : kinds) {
    for (const double eps : {0.002, 0.01}) {
      for (const double theta : {0.08, 0.12}) {
        for (const std::uint64_t seed : {1ull, 2ull}) {
          cases.push_back(SweepCase{kind, eps, theta, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, AssessorSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = assessor_kind_name(info.param.kind);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      name += "_eps" + std::to_string(static_cast<int>(
                           info.param.epsilon * 1000));
      name += "_th" + std::to_string(static_cast<int>(
                          info.param.theta * 100));
      name += "_s" + std::to_string(info.param.seed);
      return name;
    });

}  // namespace
}  // namespace amri::assessment
