#include "assessment/sria.hpp"

#include <gtest/gtest.h>

namespace amri::assessment {
namespace {

TEST(Sria, ExactCounts) {
  Sria s(0b111);
  for (int i = 0; i < 7; ++i) s.observe(0b001);
  for (int i = 0; i < 3; ++i) s.observe(0b110);
  EXPECT_EQ(s.observed(), 10u);
  EXPECT_EQ(s.table_size(), 2u);
}

TEST(Sria, ResultsFilterByTheta) {
  Sria s(0b111);
  for (int i = 0; i < 90; ++i) s.observe(0b001);
  for (int i = 0; i < 9; ++i) s.observe(0b010);
  s.observe(0b100);
  const auto res = s.results(0.05);
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0].mask, 0b001u);
  EXPECT_DOUBLE_EQ(res[0].frequency, 0.9);
  EXPECT_EQ(res[1].mask, 0b010u);
  EXPECT_EQ(res[0].max_error, 0u);  // SRIA is exact
}

TEST(Sria, EmptyResultsWhenNothingObserved) {
  Sria s(0b11);
  EXPECT_TRUE(s.results(0.1).empty());
  EXPECT_EQ(s.observed(), 0u);
}

TEST(Sria, ThetaZeroReturnsEverything) {
  Sria s(0b111);
  s.observe(0b001);
  s.observe(0b010);
  s.observe(0b100);
  EXPECT_EQ(s.results(0.0).size(), 3u);
}

TEST(Sria, ResetClears) {
  Sria s(0b11);
  s.observe(0b01);
  s.reset();
  EXPECT_EQ(s.observed(), 0u);
  EXPECT_EQ(s.table_size(), 0u);
}

TEST(Sria, MemoryGrowsWithDistinctPatterns) {
  Sria s(0b11111);
  const auto before = s.approx_bytes();
  for (AttrMask m = 0; m < 32; ++m) s.observe(m);
  EXPECT_GT(s.approx_bytes(), before);
  EXPECT_EQ(s.table_size(), 32u);
}

TEST(Sria, NameAndFactory) {
  Sria s(0b1);
  EXPECT_EQ(s.name(), "SRIA");
  const auto made = make_assessor(AssessorKind::kSria, 0b111);
  EXPECT_EQ(made->name(), "SRIA");
}

}  // namespace
}  // namespace amri::assessment
