#include "assessment/csria.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace amri::assessment {
namespace {

TEST(Csria, FrequentPatternSurvives) {
  Csria c(0b111, 0.01);
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    c.observe(rng.uniform01() < 0.4 ? 0b011
                                    : static_cast<AttrMask>(rng.below(8)));
  }
  const auto res = c.results(0.1);
  bool found = false;
  for (const auto& r : res) {
    if (r.mask == 0b011) found = true;
  }
  EXPECT_TRUE(found);
}

// The paper's §IV-C2 discussion: CSRIA *deletes* the related patterns
// <A,*,*> and <A,B,*> (4% each) even though their combined mass is 8%.
TEST(Csria, DeletesRelatedSubThresholdPatterns) {
  // theta = 5%, epsilon chosen so compression prunes 4% patterns:
  // a pattern at frequency f survives lossy counting only if f > eps
  // asymptotically; with eps = 4.5% > 4%, A and AB get pruned repeatedly.
  Csria c(0b111, 0.045);
  Rng rng(2);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    AttrMask m;
    if (u < 0.04) m = 0b001;        // <A,*,*> 4%
    else if (u < 0.08) m = 0b011;   // <A,B,*> 4%
    else if (u < 0.18) m = 0b010;   // <*,B,*> 10%
    else if (u < 0.28) m = 0b100;   // <*,*,C> 10%
    else if (u < 0.44) m = 0b101;   // <A,*,C> 16%
    else if (u < 0.54) m = 0b110;   // <*,B,C> 10%
    else m = 0b111;                 // <A,B,C> 46%
    c.observe(m);
  }
  // Neither sub-threshold pattern is retained with a meaningful count:
  // their statistics were repeatedly deleted (the paper's complaint).
  const auto res = c.results(0.05 + 0.045);  // theta above eps slack
  for (const auto& r : res) {
    EXPECT_NE(r.mask, 0b001u);
    EXPECT_NE(r.mask, 0b011u);
  }
}

TEST(Csria, TableBoundedUnderUniformPatterns) {
  Csria c(0b1111111111, 0.01);  // 1024 possible patterns
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    c.observe(static_cast<AttrMask>(rng.below(1024)));
  }
  EXPECT_LT(c.table_size(), 1024u);
}

TEST(Csria, ResultsCarryMaxError) {
  Csria c(0b11, 0.1);
  for (int i = 0; i < 100; ++i) c.observe(0b01);
  const auto res = c.results(0.5);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].mask, 0b01u);
  // Inserted in the first segment: zero error.
  EXPECT_EQ(res[0].max_error, 0u);
}

TEST(Csria, ResetClears) {
  Csria c(0b11, 0.1);
  c.observe(0b01);
  c.reset();
  EXPECT_EQ(c.observed(), 0u);
  EXPECT_TRUE(c.results(0.0).empty());
}

TEST(Csria, FactoryAppliesEpsilon) {
  AssessorParams p;
  p.epsilon = 0.25;
  const auto a = make_assessor(AssessorKind::kCsria, 0b111, p);
  EXPECT_EQ(a->name(), "CSRIA");
  auto* c = dynamic_cast<Csria*>(a.get());
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->epsilon(), 0.25);
}

TEST(Csria, InvariantsHoldUnderLoad) {
  Csria c(0b111, 0.02);
  Rng rng(9);
  for (int i = 0; i < 30000; ++i) {
    c.observe(static_cast<AttrMask>(rng.below(8)));
    if (i % 5000 == 0) c.check_invariants();
  }
  c.check_invariants();
  c.decay(0.5);
  c.check_invariants();
}

}  // namespace
}  // namespace amri::assessment
