// End-to-end reproduction of the paper's §IV-C2 / §IV-D2 worked example
// (Table II + Figure 5): the same workload flows through CSRIA and CDIA,
// and index selection over each answer yields the paper's two different
// 4-bit index configurations.
#include <gtest/gtest.h>

#include <optional>

#include "assessment/cdia.hpp"
#include "assessment/csria.hpp"
#include "index/index_optimizer.hpp"

namespace amri::assessment {
namespace {

// Table II frequencies over JAS {A,B,C} (A = bit 0).
void feed_table2(Assessor& a, int scale) {
  const struct {
    AttrMask mask;
    int permille;
  } rows[] = {
      {0b001, 40},  {0b010, 100}, {0b100, 100}, {0b011, 40},
      {0b101, 160}, {0b110, 100}, {0b111, 460},
  };
  // Round-robin interleave so no pattern is bursty.
  for (int step = 0; step < scale; ++step) {
    for (const auto& row : rows) {
      for (int k = 0; k < row.permille / 20; ++k) a.observe(row.mask);
    }
  }
}

index::IndexOptimizer paper_optimizer() {
  index::WorkloadParams p;
  p.lambda_d = 1000.0;
  p.lambda_r = 1000.0;
  p.window_units = 10.0;
  p.hash_cost = 1.0;
  p.compare_cost = 1.0;
  index::OptimizerOptions opts;
  opts.bit_budget = 4;
  opts.max_bits_per_attr = 4;
  return index::IndexOptimizer(index::CostModel(p), opts);
}

TEST(Table2Example, CsriaExcludesAChainAndPicksBC) {
  Csria csria(0b111, 0.001);  // paper: epsilon = .1%
  feed_table2(csria, 100);
  const auto res = csria.results(0.05);  // paper: theta = 5%
  // <A,*,*> and <A,B,*> (4% each) fall below theta - eps: excluded.
  for (const auto& r : res) {
    EXPECT_NE(r.mask, 0b001u);
    EXPECT_NE(r.mask, 0b011u);
  }
  EXPECT_EQ(res.size(), 5u);  // B, C, AC, BC, ABC survive

  const auto best =
      paper_optimizer().optimize(3, to_pattern_frequencies(res));
  // Paper: "IC found by CSRIA is the configuration with the B attribute
  // having 1 bit and the C attribute having 3 bits."
  EXPECT_EQ(best.config.bits(0), 0);
  EXPECT_EQ(best.config.bits(1), 1);
  EXPECT_EQ(best.config.bits(2), 3);
}

TEST(Table2Example, CdiaRandomRecoversTrueOptimum) {
  // The paper's random-combination outcome folds <A,B,*> into <A,*,*>;
  // find a seed exhibiting it (each seed has ~50% chance).
  std::optional<std::vector<AssessedPattern>> with_a;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Cdia cdia(0b111, 0.001, stats::CombinePolicy::kRandom, seed);
    feed_table2(cdia, 100);
    const auto res = cdia.results(0.05);
    for (const auto& r : res) {
      if (r.mask == 0b001 && r.frequency > 0.07) {
        with_a = res;
        break;
      }
    }
    if (with_a) break;
  }
  ASSERT_TRUE(with_a.has_value())
      << "no seed folded <A,B,*> into <A,*,*>";

  const auto best =
      paper_optimizer().optimize(3, to_pattern_frequencies(*with_a));
  // Paper: "the true optimal IC is the configuration with A and B
  // attributes having 1 bit each and the C attribute having 2 bits."
  EXPECT_EQ(best.config.bits(0), 1);
  EXPECT_EQ(best.config.bits(1), 1);
  EXPECT_EQ(best.config.bits(2), 2);
}

TEST(Table2Example, CdiaBeatsCsriaUnderPaperCostModel) {
  // The recovered IC must cost no more than CSRIA's under the *true*
  // frequencies (that is what "true optimal" means).
  const std::vector<index::PatternFrequency> truth = {
      {0b001, 0.04}, {0b010, 0.10}, {0b100, 0.10}, {0b011, 0.04},
      {0b101, 0.16}, {0b110, 0.10}, {0b111, 0.46},
  };
  index::WorkloadParams p;
  p.lambda_d = 1000.0;
  p.lambda_r = 1000.0;
  p.window_units = 10.0;
  p.hash_cost = 1.0;
  p.compare_cost = 1.0;
  const index::CostModel model(p);
  const double csria_ic = model.paper_cost(index::IndexConfig({0, 1, 3}), truth);
  const double cdia_ic = model.paper_cost(index::IndexConfig({1, 1, 2}), truth);
  EXPECT_LT(cdia_ic, csria_ic);
}

}  // namespace
}  // namespace amri::assessment
