// Machine-readable bench output: every bench binary accepts
// `--json <path>` (or `--json=<path>`) and writes an array of
// {"bench", "metric", "value"} records alongside its normal console
// output. tools/run_bench.py aggregates these per-binary files into the
// committed BENCH_<date>.json trajectory (see docs/benchmarking.md).
//
// Two entry points:
//   * AMRI_BENCHMARK_MAIN() — drop-in replacement for BENCHMARK_MAIN() in
//     google-benchmark binaries; records real/cpu time and every user
//     counter (items_per_second etc.) per benchmark run;
//   * maybe_write_json(cfg, records) — for the plain figure/ablation
//     binaries, which collect their own records and honour json=<path>.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace amri::bench {

/// One measured scalar: which benchmark produced it, what it measures
/// (metric names carry their unit suffix, e.g. "real_time_ns"), and the
/// value itself.
struct BenchRecord {
  std::string bench;
  std::string metric;
  double value = 0.0;
};

inline void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Serialise `records` as a JSON array (one object per line, so diffs and
/// greps stay readable). Returns false if the file cannot be written.
inline bool write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::ofstream out(path);
  if (!out) return false;
  std::string body = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    body += "  {\"bench\": \"";
    append_json_escaped(body, records[i].bench);
    body += "\", \"metric\": \"";
    append_json_escaped(body, records[i].metric);
    body += "\", \"value\": ";
    char num[64];
    std::snprintf(num, sizeof(num), "%.17g", records[i].value);
    body += num;
    body += i + 1 < records.size() ? "},\n" : "}\n";
  }
  body += "]\n";
  out << body;
  return static_cast<bool>(out);
}

}  // namespace amri::bench

// The google-benchmark harness below is only available to binaries that
// link the library; the plain figure/ablation benches include this header
// without it.
#if defined(BENCHMARK_BENCHMARK_H_)

namespace amri::bench {

/// A ConsoleReporter that also records every per-iteration run. Subclassing
/// the display reporter (instead of passing a file reporter) sidesteps
/// google-benchmark's requirement that file reporters come with
/// --benchmark_out, and keeps the familiar console table intact.
class RecordingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      // With repetitions, record the aggregate rows (mean/median/stddev —
      // the name carries the suffix) and skip the individual repetitions;
      // without, record the single iteration run.
      if (run.run_type == Run::RT_Iteration && run.repetitions > 1) continue;
      const std::string unit = benchmark::GetTimeUnitString(run.time_unit);
      const std::string name = run.benchmark_name();
      records_.push_back(
          {name, "real_time_" + unit, run.GetAdjustedRealTime()});
      records_.push_back({name, "cpu_time_" + unit, run.GetAdjustedCPUTime()});
      for (const auto& [counter_name, counter] : run.counters) {
        records_.push_back({name, counter_name, counter.value});
      }
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<BenchRecord>& records() const { return records_; }

 private:
  std::vector<BenchRecord> records_;
};

/// BENCHMARK_MAIN() body plus `--json <path>` handling: the flag is
/// stripped before google-benchmark sees argv (it rejects unknown flags).
inline int gbench_main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  RecordingConsoleReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    if (!write_bench_json(json_path, reporter.records())) {
      std::cerr << "bench-json: cannot write " << json_path << "\n";
      return 1;
    }
    std::cerr << "bench-json: wrote " << json_path << " ("
              << reporter.records().size() << " records)\n";
  }
  return 0;
}

}  // namespace amri::bench

#define AMRI_BENCHMARK_MAIN()                 \
  int main(int argc, char** argv) {           \
    return amri::bench::gbench_main(argc, argv); \
  }

#endif  // defined(BENCHMARK_BENCHMARK_H_)
