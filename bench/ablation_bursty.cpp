// ABL-BURST — robustness under bursty, regime-switching arrivals: the
// fluctuation-heavy environment the paper's introduction motivates (and
// the closest synthetic stand-in for its tech-report real-data traces).
// Bursts multiply arrival rates; an index that is wrong for the moment's
// access patterns falls behind during bursts and accumulates backlog.
#include <iostream>

#include "bench_util.hpp"
#include "workload/bursty_source.hpp"

int main(int argc, char** argv) {
  using namespace amri;
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  EvalParams params = EvalParams::from_config(cfg);
  if (!cfg.has("sim_seconds")) params.duration_seconds = 240.0;
  if (!cfg.has("warmup")) params.warmup_seconds = 60.0;
  const double burst_mult = cfg.double_or("burst", 3.0);

  std::cout << "=== Ablation: bursty arrivals (burst x" << burst_mult
            << ") ===\n\n";
  const std::vector<MethodSpec> methods = {
      {"AMRI", engine::IndexBackend::kAmri,
       assessment::AssessorKind::kCdiaHighestCount, 0},
      {"static-bitmap", engine::IndexBackend::kStaticBitmap,
       assessment::AssessorKind::kCdiaHighestCount, 0},
      {"adaptive-hash", engine::IndexBackend::kAccessModules,
       assessment::AssessorKind::kCdiaHighestCount, 3},
  };
  TablePrinter table({"method", "outputs", "died_at_sec", "dropped",
                      "peak_mem_kb"});
  for (const auto& m : methods) {
    const auto scenario = make_scenario(params);
    auto eopts = make_executor_options(scenario, params, m);
    workload::BurstyOptions bopts;
    bopts.base_rates_per_sec.assign(params.rate_per_sec > 0 ? 4 : 4,
                                    params.rate_per_sec * 0.7);
    bopts.burst_multiplier = burst_mult;
    bopts.seed = params.seed;
    workload::BurstySource src(scenario.query(), scenario.schedule(), bopts);
    engine::Executor ex(scenario.query(), eopts);
    const auto r = ex.run(src);
    table.add_row(
        {m.label, TablePrinter::fmt_int(static_cast<long long>(r.outputs)),
         r.died_at ? TablePrinter::fmt(micros_to_seconds(*r.died_at), 0)
                   : "-",
         TablePrinter::fmt_int(static_cast<long long>(r.arrivals_dropped)),
         TablePrinter::fmt_int(
             static_cast<long long>(r.peak_memory / 1024))});
    std::cerr << "[abl-burst] " << m.label << " outputs=" << r.outputs
              << "\n";
  }
  table.print(std::cout);
  return 0;
}
