// ABL-ATTRS — paper §V: "even for systems with a small number of possible
// aps, there already is a significant benefit ... Clearly, as the number
// of ap in a state increases so does the probability of ap statistics
// being eliminated."
//
// Sweep the join-attribute count n (pattern space 2^n) under a drifting
// request mix and measure, per assessment method, how much of the
// workload's probability mass survives into the tuning answer at theta.
// With more attributes the mass fragments across more patterns, so exact
// thresholding (SRIA) and deletion (CSRIA) lose a growing share, while
// CDIA's lattice combination recovers it into ancestors.
#include <iostream>

#include "bench_util.hpp"
#include "workload/request_generator.hpp"

namespace {

using namespace amri;

/// Share of all requests covered by the reported patterns (by true count).
double reported_mass(const std::vector<assessment::AssessedPattern>& res,
                     std::uint64_t total) {
  std::uint64_t sum = 0;
  for (const auto& r : res) sum += r.count;
  return total == 0 ? 0.0 : static_cast<double>(sum) / total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  const double theta = cfg.double_or("theta", 0.1);
  const double epsilon = cfg.double_or("epsilon", 0.05);
  const auto requests =
      static_cast<std::uint64_t>(cfg.int_or("requests", 60000));

  std::cout << "=== Ablation: join attributes per state (pattern space "
               "2^n) ===\n"
            << "reported mass = share of request mass the tuner sees at "
               "theta=" << theta << "\n\n";
  TablePrinter table({"attrs", "patterns", "SRIA_mass", "CSRIA_mass",
                      "CDIA_hc_mass", "SRIA_entries", "CSRIA_entries",
                      "CDIA_entries"});
  for (const int n : {3, 4, 5, 6, 8, 10}) {
    const AttrMask universe = low_bits(n);
    assessment::AssessorParams params;
    params.epsilon = epsilon;
    const auto sria =
        assessment::make_assessor(assessment::AssessorKind::kSria, universe);
    const auto csria = assessment::make_assessor(
        assessment::AssessorKind::kCsria, universe, params);
    const auto cdia = assessment::make_assessor(
        assessment::AssessorKind::kCdiaHighestCount, universe, params);

    // Drifting mix: per phase one hot single-attribute family (the route
    // head) plus the full pattern, with a diverse noise floor — request
    // mass fragments across the space as n grows.
    auto gen = workload::RequestGenerator::rotating(
        n, 8, requests / 8, 0.5, 42 + static_cast<std::uint64_t>(n));
    for (std::uint64_t i = 0; i < requests; ++i) {
      const AttrMask m = gen.next();
      sria->observe(m);
      csria->observe(m);
      cdia->observe(m);
    }

    table.add_row(
        {TablePrinter::fmt_int(n),
         TablePrinter::fmt_int((1ll << n)),
         TablePrinter::fmt_pct(reported_mass(sria->results(theta), requests)),
         TablePrinter::fmt_pct(reported_mass(csria->results(theta), requests)),
         TablePrinter::fmt_pct(reported_mass(cdia->results(theta), requests)),
         TablePrinter::fmt_int(static_cast<long long>(sria->table_size())),
         TablePrinter::fmt_int(static_cast<long long>(csria->table_size())),
         TablePrinter::fmt_int(static_cast<long long>(cdia->table_size()))});
    std::cerr << "[abl-attrs] n=" << n << " done\n";
  }
  table.print(std::cout);
  std::cout << "\n(CDIA's recovered mass is what index selection gets to "
               "allocate bits with;\nthe SRIA/CSRIA columns shrink as the "
               "space grows — the paper's elimination\nprobability claim.)\n";
  return 0;
}
