// MICRO-HH — ingest cost of the heavy-hitter machinery behind the
// assessment methods: Lossy Counting (CSRIA), Misra–Gries [25],
// SpaceSaving, and the lattice-based hierarchical heavy hitter (CDIA),
// under skewed and uniform access-pattern streams. Counters report the
// retained table size.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <vector>

#include "common/rng.hpp"
#include "stats/hierarchical_hh.hpp"
#include "stats/lossy_counting.hpp"
#include "stats/misra_gries.hpp"
#include "stats/space_saving.hpp"

namespace {

using namespace amri;
using namespace amri::stats;

std::vector<AttrMask> make_stream(std::size_t n, bool skewed,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AttrMask> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (skewed && rng.uniform01() < 0.6) {
      out.push_back(0b0000011);  // hot pattern
    } else {
      out.push_back(static_cast<AttrMask>(rng.below(128)));  // 7 attrs
    }
  }
  return out;
}

constexpr std::size_t kN = 100000;

void BM_LossyCounting(benchmark::State& state) {
  const auto stream = make_stream(kN, state.range(0) != 0, 1);
  std::size_t table = 0;
  for (auto _ : state) {
    LossyCounting<AttrMask> lc(0.01);
    for (const AttrMask m : stream) lc.observe(m);
    table = lc.size();
    benchmark::DoNotOptimize(table);
  }
  state.counters["table"] = static_cast<double>(table);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kN));
}
BENCHMARK(BM_LossyCounting)->Arg(0)->Arg(1);

void BM_MisraGries(benchmark::State& state) {
  const auto stream = make_stream(kN, state.range(0) != 0, 2);
  std::size_t table = 0;
  for (auto _ : state) {
    MisraGries<AttrMask> mg(100);
    for (const AttrMask m : stream) mg.observe(m);
    table = mg.size();
    benchmark::DoNotOptimize(table);
  }
  state.counters["table"] = static_cast<double>(table);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kN));
}
BENCHMARK(BM_MisraGries)->Arg(0)->Arg(1);

void BM_SpaceSaving(benchmark::State& state) {
  const auto stream = make_stream(kN, state.range(0) != 0, 3);
  std::size_t table = 0;
  for (auto _ : state) {
    SpaceSaving<AttrMask> ss(100);
    for (const AttrMask m : stream) ss.observe(m);
    table = ss.size();
    benchmark::DoNotOptimize(table);
  }
  state.counters["table"] = static_cast<double>(table);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kN));
}
BENCHMARK(BM_SpaceSaving)->Arg(0)->Arg(1);

void BM_HierarchicalHH(benchmark::State& state) {
  const auto stream = make_stream(kN, state.range(0) != 0, 4);
  std::size_t table = 0;
  for (auto _ : state) {
    HierarchicalHeavyHitter hhh(0x7F, 0.01, CombinePolicy::kHighestCount);
    for (const AttrMask m : stream) hhh.observe(m);
    table = hhh.size();
    benchmark::DoNotOptimize(table);
  }
  state.counters["table"] = static_cast<double>(table);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kN));
}
BENCHMARK(BM_HierarchicalHH)->Arg(0)->Arg(1);

void BM_HierarchicalHH_Results(benchmark::State& state) {
  const auto stream = make_stream(kN, true, 5);
  HierarchicalHeavyHitter hhh(0x7F, 0.01, CombinePolicy::kHighestCount);
  for (const AttrMask m : stream) hhh.observe(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hhh.results(0.1));
  }
}
BENCHMARK(BM_HierarchicalHH_Results);

}  // namespace

AMRI_BENCHMARK_MAIN()
