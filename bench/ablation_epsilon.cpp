// ABL-EPS — §IV (epsilon/theta): how the lossy-counting error rate and the
// frequency threshold trade statistics memory against the quality of the
// selected index configurations (throughput), for CDIA-hc-tuned AMRI.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace amri;
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  EvalParams params = EvalParams::from_config(cfg);
  if (!cfg.has("sim_seconds")) params.duration_seconds = 240.0;
  if (!cfg.has("warmup")) params.warmup_seconds = 60.0;

  std::cout << "=== Ablation: assessment epsilon x theta (AMRI, CDIA-hc) "
               "===\n\n";
  TablePrinter table({"epsilon", "theta", "outputs", "migrations",
                      "peak_mem_kb"});
  const MethodSpec method{"AMRI", engine::IndexBackend::kAmri,
                          assessment::AssessorKind::kCdiaHighestCount, 0};
  for (const double eps : {0.005, 0.02, 0.05, 0.1}) {
    for (const double theta : {0.05, 0.10, 0.20}) {
      EvalParams p = params;
      p.epsilon = eps;
      p.theta = theta;
      const auto scenario = make_scenario(p);
      const auto r = run_method(scenario, p, method);
      std::uint64_t migrations = 0;
      for (const auto& s : r.states) migrations += s.migrations;
      table.add_row(
          {TablePrinter::fmt(eps, 3), TablePrinter::fmt(theta, 2),
           TablePrinter::fmt_int(static_cast<long long>(r.outputs)),
           TablePrinter::fmt_int(static_cast<long long>(migrations)),
           TablePrinter::fmt_int(
               static_cast<long long>(r.peak_memory / 1024))});
      std::cerr << "[abl-eps] eps=" << eps << " theta=" << theta
                << " outputs=" << r.outputs << "\n";
    }
  }
  table.print(std::cout);
  return 0;
}
