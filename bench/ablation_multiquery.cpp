// ABL-MQ — multi-query scaling (paper §II: the AMRI logic "equally applies
// to multiple SPJ queries"): Q concurrent 2-way queries over the same two
// streams, each joining on a different attribute pair. Shared states must
// serve the union of all queries' access patterns with ONE bit-address
// index; the baseline would need a module per pattern.
//
// Two measurements, both emitted as `--json` records for the committed
// BENCH trajectory:
//   * the queries × shards × batch grid (record names
//     `abl_multiquery/queries:Q/shards:S/batch:B`) — multi-query runs on
//     the unified run-loop core inherit sharding and the batched
//     pipeline, so the full grid is one executor;
//   * shared-state vs Q independent executors (record names
//     `abl_multiquery/shared_vs_independent/queries:Q`) — the same
//     arrivals through one MultiQueryExecutor and through Q separate
//     single-query executors. The shared window stores hold each tuple
//     once instead of Q times, so shared peak memory must sit strictly
//     below the independent total.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "engine/multi_query.hpp"

namespace {

using namespace amri;
using namespace amri::bench;

/// Q queries over two streams with `q_max` attributes each; query i joins
/// attribute i of both streams.
std::vector<engine::QuerySpec> make_queries(std::size_t q, TimeMicros window) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < q; ++i) names.push_back("a" + std::to_string(i));
  const std::vector<Schema> schemas = {Schema("Left", names),
                                       Schema("Right", names)};
  std::vector<engine::QuerySpec> out;
  for (std::size_t i = 0; i < q; ++i) {
    out.emplace_back(schemas,
                     std::vector<engine::JoinPredicate>{
                         {0, static_cast<AttrId>(i), 1, static_cast<AttrId>(i)}},
                     window);
  }
  return out;
}

/// Uniform 2-stream source over `attrs` attributes.
class TwoStreamSource final : public engine::TupleSource {
 public:
  TwoStreamSource(std::size_t attrs, double rate, TimeMicros end,
                  std::uint64_t seed)
      : attrs_(attrs), interval_(seconds_to_micros(1.0 / rate)), end_(end),
        rng_(seed) {}

  std::optional<Tuple> next() override {
    if (now_ >= end_) return std::nullopt;
    Tuple t;
    t.stream = static_cast<StreamId>(seq_ % 2);
    t.ts = now_;
    t.seq = seq_++;
    for (std::size_t a = 0; a < attrs_; ++a) {
      t.values.push_back(static_cast<Value>(rng_.below(64)));
    }
    now_ += interval_ / 2;  // two streams interleaved
    return t;
  }

 private:
  std::size_t attrs_;
  TimeMicros interval_;
  TimeMicros end_;
  TimeMicros now_ = 0;
  TupleSeq seq_ = 0;
  Rng rng_;
};

engine::ExecutorOptions make_options(std::size_t q, double rate,
                                     double window_s, double duration_s) {
  engine::ExecutorOptions opts;
  opts.duration = seconds_to_micros(duration_s);
  opts.warmup = seconds_to_micros(std::min(20.0, duration_s / 4.0));
  opts.costs.compare_cost_us = 0.35;
  opts.model_params.lambda_d = rate;
  opts.model_params.lambda_r = rate * static_cast<double>(q);
  opts.model_params.window_units = window_s;
  opts.model_params.compare_cost = 0.35;
  opts.stem.backend = engine::IndexBackend::kAmri;
  opts.stem.initial_config = index::IndexConfig(std::vector<std::uint8_t>(
      q, static_cast<std::uint8_t>(std::max<std::size_t>(8 / q, 1))));
  tuner::TunerOptions t;
  t.reassess_every = 2000;
  t.optimizer.bit_budget = 8;
  opts.stem.amri_tuner = t;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double rate = cfg.double_or("rate", 200.0);
  const double window_s = cfg.double_or("window", 20.0);
  const double duration_s = cfg.double_or("sim_seconds", 120.0);
  const auto max_queries =
      static_cast<std::size_t>(cfg.int_or("max_queries", 5));
  std::vector<BenchRecord> records;

  std::cout << "=== Multi-query scaling: shared AMRI state across Q "
               "concurrent queries ===\n\n";
  TablePrinter table({"queries", "shards", "batch", "combined_outputs",
                      "peak_mem_kib", "state0_final_ic", "migrations"});
  for (std::size_t q = 1; q <= max_queries; ++q) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
      for (const std::size_t batch : {std::size_t{1}, std::size_t{8}}) {
        auto opts = make_options(q, rate, window_s, duration_s);
        opts.stem.shards = shards;
        opts.batch_size = batch;
        engine::MultiQueryExecutor ex(
            make_queries(q, seconds_to_micros(window_s)), opts);
        TwoStreamSource src(q, rate, kTimeMax, 9 + q);
        const auto r = ex.run(src);
        std::uint64_t migrations = 0;
        for (const auto& s : r.combined.states) migrations += s.migrations;
        table.add_row(
            {TablePrinter::fmt_int(static_cast<long long>(q)),
             TablePrinter::fmt_int(static_cast<long long>(shards)),
             TablePrinter::fmt_int(static_cast<long long>(batch)),
             TablePrinter::fmt_int(static_cast<long long>(r.combined.outputs)),
             TablePrinter::fmt(
                 static_cast<double>(r.combined.peak_memory) / 1024.0, 1),
             r.combined.states[0].final_index,
             TablePrinter::fmt_int(static_cast<long long>(migrations))});
        const std::string name =
            "abl_multiquery/queries:" + std::to_string(q) +
            "/shards:" + std::to_string(shards) +
            "/batch:" + std::to_string(batch);
        records.push_back(
            {name, "outputs", static_cast<double>(r.combined.outputs)});
        records.push_back({name, "peak_memory_bytes",
                           static_cast<double>(r.combined.peak_memory)});
        records.push_back(
            {name, "migrations", static_cast<double>(migrations)});
        for (std::size_t qi = 0; qi < r.per_query_outputs.size(); ++qi) {
          records.push_back({name, "q" + std::to_string(qi) + "_outputs",
                             static_cast<double>(r.per_query_outputs[qi])});
        }
        std::cerr << "[abl-mq] q=" << q << " shards=" << shards
                  << " batch=" << batch << " outputs=" << r.combined.outputs
                  << "\n";
      }
    }
  }
  table.print(std::cout);

  // Shared-state vs Q independent executors over the same arrivals: the
  // shared window stores hold each tuple once instead of Q times.
  std::cout << "\n=== Shared state vs " << max_queries
            << " independent executors ===\n\n";
  const auto queries = make_queries(max_queries, seconds_to_micros(window_s));
  const auto base_opts = make_options(max_queries, rate, window_s, duration_s);

  engine::MultiQueryExecutor shared_ex(queries, base_opts);
  TwoStreamSource shared_src(max_queries, rate, kTimeMax, 7);
  const auto shared = shared_ex.run(shared_src);

  std::uint64_t independent_outputs = 0;
  std::size_t independent_peak = 0;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    engine::Executor ex(queries[qi], base_opts);
    TwoStreamSource src(max_queries, rate, kTimeMax, 7);
    const auto r = ex.run(src);
    independent_outputs += r.outputs;
    independent_peak += r.peak_memory;
  }
  const double ratio =
      independent_peak > 0
          ? static_cast<double>(shared.combined.peak_memory) /
                static_cast<double>(independent_peak)
          : 0.0;
  TablePrinter cmp({"mode", "outputs", "peak_mem_kib"});
  cmp.add_row(
      {"shared",
       TablePrinter::fmt_int(static_cast<long long>(shared.combined.outputs)),
       TablePrinter::fmt(
           static_cast<double>(shared.combined.peak_memory) / 1024.0, 1)});
  cmp.add_row(
      {"independent x" + std::to_string(max_queries),
       TablePrinter::fmt_int(static_cast<long long>(independent_outputs)),
       TablePrinter::fmt(static_cast<double>(independent_peak) / 1024.0, 1)});
  cmp.print(std::cout);
  std::cout << "shared/independent peak memory: "
            << TablePrinter::fmt(ratio, 3) << "\n";

  const std::string cmp_name =
      "abl_multiquery/shared_vs_independent/queries:" +
      std::to_string(max_queries);
  records.push_back({cmp_name, "shared_outputs",
                     static_cast<double>(shared.combined.outputs)});
  records.push_back({cmp_name, "independent_outputs_total",
                     static_cast<double>(independent_outputs)});
  records.push_back({cmp_name, "shared_peak_memory_bytes",
                     static_cast<double>(shared.combined.peak_memory)});
  records.push_back({cmp_name, "independent_peak_memory_bytes_total",
                     static_cast<double>(independent_peak)});
  records.push_back({cmp_name, "shared_over_independent_memory", ratio});

  maybe_write_json(cfg, records);
  return 0;
}
