// ABL-MQ — multi-query scaling (paper §II: the AMRI logic "equally applies
// to multiple SPJ queries"): Q concurrent 2-way queries over the same two
// streams, each joining on a different attribute pair. Shared states must
// serve the union of all queries' access patterns with ONE bit-address
// index; the baseline would need a module per pattern. Reports per-query
// and combined throughput plus the tuned ICs.
#include <iostream>

#include "bench_util.hpp"
#include "engine/multi_query.hpp"

namespace {

using namespace amri;
using namespace amri::bench;

/// Q queries over two streams with `q_max` attributes each; query i joins
/// attribute i of both streams.
std::vector<engine::QuerySpec> make_queries(std::size_t q, TimeMicros window) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < q; ++i) names.push_back("a" + std::to_string(i));
  const std::vector<Schema> schemas = {Schema("Left", names),
                                       Schema("Right", names)};
  std::vector<engine::QuerySpec> out;
  for (std::size_t i = 0; i < q; ++i) {
    out.emplace_back(schemas,
                     std::vector<engine::JoinPredicate>{
                         {0, static_cast<AttrId>(i), 1, static_cast<AttrId>(i)}},
                     window);
  }
  return out;
}

/// Uniform 2-stream source over `attrs` attributes.
class TwoStreamSource final : public engine::TupleSource {
 public:
  TwoStreamSource(std::size_t attrs, double rate, TimeMicros end,
                  std::uint64_t seed)
      : attrs_(attrs), interval_(seconds_to_micros(1.0 / rate)), end_(end),
        rng_(seed) {}

  std::optional<Tuple> next() override {
    if (now_ >= end_) return std::nullopt;
    Tuple t;
    t.stream = static_cast<StreamId>(seq_ % 2);
    t.ts = now_;
    t.seq = seq_++;
    for (std::size_t a = 0; a < attrs_; ++a) {
      t.values.push_back(static_cast<Value>(rng_.below(64)));
    }
    now_ += interval_ / 2;  // two streams interleaved
    return t;
  }

 private:
  std::size_t attrs_;
  TimeMicros interval_;
  TimeMicros end_;
  TimeMicros now_ = 0;
  TupleSeq seq_ = 0;
  Rng rng_;
};

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double rate = cfg.double_or("rate", 200.0);
  const double window_s = cfg.double_or("window", 20.0);
  const double duration_s = cfg.double_or("sim_seconds", 120.0);
  const auto max_queries =
      static_cast<std::size_t>(cfg.int_or("max_queries", 5));

  std::cout << "=== Multi-query scaling: shared AMRI state across Q "
               "concurrent queries ===\n\n";
  TablePrinter table({"queries", "combined_outputs", "per_query_avg",
                      "state0_final_ic", "migrations"});
  for (std::size_t q = 1; q <= max_queries; ++q) {
    auto queries = make_queries(q, seconds_to_micros(window_s));
    engine::ExecutorOptions opts;
    opts.duration = seconds_to_micros(duration_s);
    opts.warmup = seconds_to_micros(20);
    opts.costs.compare_cost_us = 0.35;
    opts.model_params.lambda_d = rate;
    opts.model_params.lambda_r = rate * q;
    opts.model_params.window_units = window_s;
    opts.model_params.compare_cost = 0.35;
    opts.stem.backend = engine::IndexBackend::kAmri;
    opts.stem.initial_config = index::IndexConfig(
        std::vector<std::uint8_t>(q, static_cast<std::uint8_t>(8 / q)));
    tuner::TunerOptions t;
    t.reassess_every = 2000;
    t.optimizer.bit_budget = 8;
    opts.stem.amri_tuner = t;

    engine::MultiQueryExecutor ex(std::move(queries), opts);
    TwoStreamSource src(q, rate, kTimeMax, 9 + q);
    const auto r = ex.run(src);
    std::uint64_t migrations = 0;
    for (const auto& s : r.combined.states) migrations += s.migrations;
    table.add_row(
        {TablePrinter::fmt_int(static_cast<long long>(q)),
         TablePrinter::fmt_int(static_cast<long long>(r.combined.outputs)),
         TablePrinter::fmt_int(
             static_cast<long long>(r.combined.outputs / q)),
         r.combined.states[0].final_index,
         TablePrinter::fmt_int(static_cast<long long>(migrations))});
    std::cerr << "[abl-mq] q=" << q << " outputs=" << r.combined.outputs
              << "\n";
  }
  table.print(std::cout);
  return 0;
}
