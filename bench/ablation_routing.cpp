// ABL-ROUTE — routing-policy ablation: the AMR literature's routing
// policies (fixed order, cost-based greedy, lottery) over the same AMRI
// configuration. The index tuner must cope with whatever access-pattern
// mix the router induces; cost-based routing both performs best and
// shifts patterns the hardest under drift.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace amri;
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  EvalParams params = EvalParams::from_config(cfg);
  if (!cfg.has("sim_seconds")) params.duration_seconds = 240.0;
  if (!cfg.has("warmup")) params.warmup_seconds = 60.0;

  std::cout << "=== Ablation: eddy routing policy (AMRI, CDIA-hc) ===\n\n";
  TablePrinter table({"policy", "outputs", "migrations", "peak_mem_kb"});
  const MethodSpec method{"AMRI", engine::IndexBackend::kAmri,
                          assessment::AssessorKind::kCdiaHighestCount, 0};
  const std::pair<engine::RoutingPolicyKind, const char*> policies[] = {
      {engine::RoutingPolicyKind::kFixed, "fixed"},
      {engine::RoutingPolicyKind::kCostBased, "cost_based"},
      {engine::RoutingPolicyKind::kLottery, "lottery"},
  };
  for (const auto& [kind, label] : policies) {
    const auto scenario = make_scenario(params);
    auto eopts = make_executor_options(scenario, params, method);
    eopts.eddy.routing.kind = kind;
    engine::Executor ex(scenario.query(), eopts);
    const auto src = scenario.make_source();
    const auto r = ex.run(*src);
    std::uint64_t migrations = 0;
    for (const auto& s : r.states) migrations += s.migrations;
    table.add_row({label,
                   TablePrinter::fmt_int(static_cast<long long>(r.outputs)),
                   TablePrinter::fmt_int(static_cast<long long>(migrations)),
                   TablePrinter::fmt_int(
                       static_cast<long long>(r.peak_memory / 1024))});
    std::cerr << "[abl-route] " << label << " outputs=" << r.outputs << "\n";
  }
  table.print(std::cout);
  return 0;
}
