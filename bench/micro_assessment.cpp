// MICRO-ASSESS — §IV memory/CPU bounds: wall-clock ingest rate and
// retained statistics entries of every assessment method under a drifting
// access-pattern workload, swept over epsilon.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "assessment/assessor.hpp"
#include "workload/request_generator.hpp"

namespace {

using namespace amri;
using namespace amri::assessment;

constexpr std::size_t kN = 50000;

void run_assessor(benchmark::State& state, AssessorKind kind) {
  const double epsilon = static_cast<double>(state.range(0)) / 1000.0;
  auto gen = workload::RequestGenerator::rotating(7, 8, kN / 8, 0.7, 42);
  std::vector<AttrMask> stream;
  stream.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) stream.push_back(gen.next());

  std::size_t table = 0;
  std::size_t bytes = 0;
  for (auto _ : state) {
    AssessorParams params;
    params.epsilon = epsilon;
    const auto assessor = make_assessor(kind, low_bits(7), params);
    for (const AttrMask m : stream) assessor->observe(m);
    table = assessor->table_size();
    bytes = assessor->approx_bytes();
    benchmark::DoNotOptimize(assessor->results(0.1));
  }
  state.counters["table"] = static_cast<double>(table);
  state.counters["stat_bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kN));
}

void BM_Assess_SRIA(benchmark::State& state) {
  run_assessor(state, AssessorKind::kSria);
}
void BM_Assess_CSRIA(benchmark::State& state) {
  run_assessor(state, AssessorKind::kCsria);
}
void BM_Assess_DIA(benchmark::State& state) {
  run_assessor(state, AssessorKind::kDia);
}
void BM_Assess_CDIA_Random(benchmark::State& state) {
  run_assessor(state, AssessorKind::kCdiaRandom);
}
void BM_Assess_CDIA_HC(benchmark::State& state) {
  run_assessor(state, AssessorKind::kCdiaHighestCount);
}

// Argument: epsilon in thousandths (50 = paper's delta of .05).
BENCHMARK(BM_Assess_SRIA)->Arg(50);
BENCHMARK(BM_Assess_CSRIA)->Arg(10)->Arg(50)->Arg(100);
BENCHMARK(BM_Assess_DIA)->Arg(50);
BENCHMARK(BM_Assess_CDIA_Random)->Arg(10)->Arg(50)->Arg(100);
BENCHMARK(BM_Assess_CDIA_HC)->Arg(10)->Arg(50)->Arg(100);

}  // namespace

AMRI_BENCHMARK_MAIN()
