// MICRO-BATCH-PIPELINE — the batched probe path measured on real hardware
// with google-benchmark, sweeping batch size x shard count:
//   * probe churn (the steady state: window rotation + probes): batch = 1
//     is the tuple-at-a-time baseline (single probe() calls); larger
//     batches go through probe_batch, which pays the per-probe dispatch
//     work — shard fan-out submit/wait, per-shard locking, access-pattern
//     layout — once per batch instead of once per tuple. The modelled cost
//     is identical by construction (the differential tests assert it);
//     what this measures is the *wall-clock* amortisation;
//   * grouped wildcard enumeration (unsharded): keys sharing an access
//     pattern reuse one wildcard-combination table per batch instead of
//     rebuilding it per probe.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "index/bit_address_index.hpp"
#include "index/sharded_bit_index.hpp"

namespace {

using namespace amri;
using namespace amri::index;

constexpr std::size_t kWindow = 100000;  ///< stored tuples per benchmark
constexpr std::int64_t kDomain = 50000;

std::vector<std::unique_ptr<Tuple>> make_tuples(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<Tuple>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto t = std::make_unique<Tuple>();
    t->seq = i;
    t->ts = static_cast<TimeMicros>(i);
    for (int a = 0; a < 2; ++a) {
      t->values.push_back(
          static_cast<Value>(rng.below(static_cast<std::uint64_t>(kDomain))));
    }
    out.push_back(std::move(t));
  }
  return out;
}

JoinAttributeSet jas2() { return JoinAttributeSet({0, 1}); }

/// Steady-state probe churn on a full 100k-tuple window: each benchmark
/// iteration rotates the window by `batch` tuples and answers `batch`
/// probes that leave the sharding attribute unbound (the fan-out route —
/// the worst case for per-probe dispatch). All index bits sit on the
/// probed attribute, so the per-key index work is one small bucket and the
/// dispatch overhead dominates; batch = 1 runs the plain probe() loop,
/// batch > 1 runs one probe_batch (one ThreadPool task per shard per
/// batch). items_per_second counts tuples, so runs are comparable across
/// batch sizes.
void BM_BatchPipeline_ProbeChurn(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const auto tuples = make_tuples(2 * kWindow, 7);
  ThreadPool pool;
  ShardedBitIndex idx(jas2(), IndexConfig({0, 17}), BitMapper::hashing(2),
                      shards, /*shard_pos=*/0,
                      shards > 1 ? &pool : nullptr);
  for (std::size_t i = 0; i < kWindow; ++i) idx.insert(tuples[i].get());

  Rng rng(11);
  std::size_t oldest = 0;
  std::size_t next = kWindow;
  std::vector<ProbeKey> keys(batch);
  std::vector<std::vector<const Tuple*>> outs(batch);
  std::vector<ProbeStats> stats(batch);
  std::uint64_t matches = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      idx.erase(tuples[oldest].get());
      oldest = (oldest + 1) % tuples.size();
      idx.insert(tuples[next].get());
      next = (next + 1) % tuples.size();
      keys[i].mask = 0b10;  // sharding attribute unbound -> fan out
      keys[i].values.clear();
      keys[i].values.push_back(0);
      keys[i].values.push_back(tuples[rng.below(tuples.size())]->at(1));
      outs[i].clear();
      stats[i] = ProbeStats{};
    }
    if (batch == 1) {
      stats[0] = idx.probe(keys[0], outs[0]);
    } else {
      idx.probe_batch(keys.data(), batch, outs.data(), stats.data());
    }
    for (std::size_t i = 0; i < batch; ++i) matches += stats[i].matches;
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
  state.counters["matches_per_probe"] = benchmark::Counter(
      static_cast<double>(matches),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BatchPipeline_ProbeChurn)
    ->ArgNames({"batch", "shards"})
    ->Args({1, 1})
    ->Args({16, 1})
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({1, 4})
    ->Args({16, 4})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Unit(benchmark::kMicrosecond);

/// Grouped wildcard enumeration: probes bind only the un-indexed attribute,
/// so every probe must enumerate all 2^bits wildcard bucket combinations.
/// A small window keeps the buckets sparse — the enumeration table itself
/// is the dominant per-probe setup cost, and the grouped batch path builds
/// it once per (access-pattern, bucket-bits) group instead of once per key.
void BM_BatchPipeline_GroupedEnumeration(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const std::size_t window = 1000;
  const auto tuples = make_tuples(window, 19);
  BitAddressIndex idx(jas2(), IndexConfig({0, 12}), BitMapper::hashing(2));
  for (const auto& t : tuples) idx.insert(t.get());

  Rng rng(23);
  std::vector<ProbeKey> keys(batch);
  std::vector<std::vector<const Tuple*>> outs(batch);
  std::vector<ProbeStats> stats(batch);
  std::uint64_t compared = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      keys[i].mask = 0b01;  // attr 0 bound; all 12 IC bits are wildcards
      keys[i].values.clear();
      keys[i].values.push_back(tuples[rng.below(tuples.size())]->at(0));
      keys[i].values.push_back(0);
      outs[i].clear();
    }
    if (batch == 1) {
      stats[0] = idx.probe(keys[0], outs[0]);
    } else {
      idx.probe_batch(keys.data(), batch, outs.data(), stats.data());
    }
    for (std::size_t i = 0; i < batch; ++i) {
      compared += stats[i].tuples_compared;
    }
    benchmark::DoNotOptimize(compared);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BatchPipeline_GroupedEnumeration)
    ->ArgName("batch")
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

AMRI_BENCHMARK_MAIN()
