// MICRO-SHARDED-STEM — the sharded state layer, measured on real hardware
// with google-benchmark across shard counts (1, 2, 4, 8):
//   * probe churn (the steady state: window rotation + probes that bind
//     the sharding attribute): the shard route acts as a hash partition on
//     that attribute, so a probe touches ~1/N of a 100k-tuple window even
//     when the IC spends its bits elsewhere — a wall-clock win that needs
//     no extra cores;
//   * fan-out probes (sharding attribute unbound): every shard is probed;
//     with a thread pool the shards run in parallel, so the speedup tracks
//     the machine's core count (flat on a single-core host);
//   * shard-by-shard migration: the total rebuild work is unchanged, but
//     the largest single pause — what a concurrent probe can block
//     behind — shrinks to ~1/N of the window (max_shard_hashes counter).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "index/index_migrator.hpp"
#include "index/sharded_bit_index.hpp"

namespace {

using namespace amri;
using namespace amri::index;

constexpr std::size_t kWindow = 100000;  ///< stored tuples per benchmark
constexpr std::int64_t kDomain = 50000;

std::vector<std::unique_ptr<Tuple>> make_tuples(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<Tuple>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto t = std::make_unique<Tuple>();
    t->seq = i;
    t->ts = static_cast<TimeMicros>(i);
    for (int a = 0; a < 2; ++a) {
      t->values.push_back(
          static_cast<Value>(rng.below(static_cast<std::uint64_t>(kDomain))));
    }
    out.push_back(std::move(t));
  }
  return out;
}

JoinAttributeSet jas2() { return JoinAttributeSet({0, 1}); }

/// The adversarial-for-the-IC configuration: all index bits on attribute 1,
/// none on the sharding attribute 0. Probes binding only attribute 0 get no
/// help from the IC — pruning can come only from the shard route.
IndexConfig skewed_config() { return IndexConfig({0, 6}); }

ShardedBitIndex make_index(std::size_t shards, ThreadPool* pool) {
  return ShardedBitIndex(jas2(), skewed_config(), BitMapper::hashing(2),
                         shards, /*shard_pos=*/0, pool);
}

/// Steady-state probe churn on a full 100k-tuple window: each iteration
/// rotates the window by one tuple (erase oldest, insert next) and runs one
/// probe that binds the sharding attribute. With N shards the probe is
/// answered from one shard (~kWindow / N comparisons) instead of the whole
/// window.
void BM_ShardedStem_ProbeChurn(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto tuples = make_tuples(2 * kWindow, 7);
  ShardedBitIndex idx = make_index(shards, nullptr);
  for (std::size_t i = 0; i < kWindow; ++i) idx.insert(tuples[i].get());

  Rng rng(11);
  std::size_t oldest = 0;
  std::size_t next = kWindow;
  std::vector<const Tuple*> out;
  std::uint64_t compared = 0;
  for (auto _ : state) {
    idx.erase(tuples[oldest].get());
    oldest = (oldest + 1) % tuples.size();
    idx.insert(tuples[next].get());
    next = (next + 1) % tuples.size();

    ProbeKey key;
    key.mask = 0b01;  // binds the sharding attribute -> one shard
    key.values.push_back(tuples[rng.below(tuples.size())]->at(0));
    key.values.push_back(0);
    out.clear();
    compared += idx.probe(key, out).tuples_compared;
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["tuples_compared_per_probe"] = benchmark::Counter(
      static_cast<double>(compared), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ShardedStem_ProbeChurn)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

/// Fan-out probes: the sharding attribute stays unbound, so every shard is
/// probed and the full window is compared regardless of N. The work runs on
/// a thread pool; wall-clock speedup tracks the available cores (a
/// single-core host sees parity, the cost-parity property of the wrapper).
void BM_ShardedStem_FanoutProbe(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto tuples = make_tuples(kWindow, 7);
  ThreadPool pool;  // hardware_concurrency workers
  ShardedBitIndex idx = make_index(shards, &pool);
  for (const auto& t : tuples) idx.insert(t.get());

  Rng rng(13);
  std::vector<const Tuple*> out;
  for (auto _ : state) {
    ProbeKey key;
    key.mask = 0b10;  // sharding attribute unbound -> fan out
    key.values.push_back(0);
    key.values.push_back(tuples[rng.below(tuples.size())]->at(1));
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out).matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedStem_FanoutProbe)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

/// Shard-by-shard reconfiguration of a full window. Total rehash work is
/// IC-migration work as ever; the counter to watch is max_shard_hashes —
/// the largest single-shard rebuild, i.e. the longest pause any concurrent
/// probe can block behind — which shrinks to ~1/N of the total.
void BM_ShardedStem_Migration(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto tuples = make_tuples(kWindow, 7);
  ShardedBitIndex idx = make_index(shards, nullptr);
  for (const auto& t : tuples) idx.insert(t.get());

  const IndexMigrator migrator;
  const IndexConfig a = skewed_config();
  const IndexConfig b({3, 3});
  bool flip = false;
  std::uint64_t total_hashes = 0;
  std::uint64_t max_shard_hashes = 0;
  for (auto _ : state) {
    const auto report = idx.migrate_shards(flip ? a : b, migrator);
    flip = !flip;
    total_hashes += report.hashes_charged;
    max_shard_hashes = std::max(max_shard_hashes, report.max_shard_hashes);
    benchmark::DoNotOptimize(report.tuples_moved);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWindow));
  state.counters["total_hashes"] = benchmark::Counter(
      static_cast<double>(total_hashes), benchmark::Counter::kAvgIterations);
  state.counters["max_shard_hashes"] =
      benchmark::Counter(static_cast<double>(max_shard_hashes));
}
BENCHMARK(BM_ShardedStem_Migration)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

AMRI_BENCHMARK_MAIN()
