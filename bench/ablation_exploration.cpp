// ABL-EXPLORE — §I-B challenge 1: the router periodically sends requests
// to suboptimal operators to refresh statistics. Sweep the exploration
// rate: zero starves the routing statistics (and the assessment) of
// coverage; too much floods states with low-value diverse probes, which
// the paper argues should not steer the index configuration.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace amri;
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  EvalParams params = EvalParams::from_config(cfg);
  if (!cfg.has("sim_seconds")) params.duration_seconds = 240.0;
  if (!cfg.has("warmup")) params.warmup_seconds = 60.0;

  std::cout << "=== Ablation: router exploration rate (AMRI, CDIA-hc) "
               "===\n\n";
  TablePrinter table({"explore", "outputs", "migrations", "peak_mem_kb"});
  const MethodSpec method{"AMRI", engine::IndexBackend::kAmri,
                          assessment::AssessorKind::kCdiaHighestCount, 0};
  for (const double rate : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    EvalParams p = params;
    p.exploration_rate = rate;
    const auto scenario = make_scenario(p);
    const auto r = run_method(scenario, p, method);
    std::uint64_t migrations = 0;
    for (const auto& s : r.states) migrations += s.migrations;
    table.add_row({TablePrinter::fmt(rate, 2),
                   TablePrinter::fmt_int(static_cast<long long>(r.outputs)),
                   TablePrinter::fmt_int(static_cast<long long>(migrations)),
                   TablePrinter::fmt_int(
                       static_cast<long long>(r.peak_memory / 1024))});
    std::cerr << "[abl-explore] rate=" << rate << " outputs=" << r.outputs
              << "\n";
  }
  table.print(std::cout);
  return 0;
}
