// TAB2 — Paper Table II + §IV-C2/§IV-D2 worked example, end to end:
// feed the Table II access-pattern frequencies through CSRIA and CDIA,
// print what survives each assessment, and run index selection (4-bit IC,
// theta = 5%, epsilon = .1%) over each answer. Expected: CSRIA drops the
// <A,*,*>/<A,B,*> mass and selects [B:1 C:3]; CDIA combines it and selects
// the true optimum [A:1 B:1 C:2].
#include <iostream>

#include "assessment/cdia.hpp"
#include "assessment/csria.hpp"
#include "assessment/sria.hpp"
#include "common/table_printer.hpp"
#include "index/access_pattern.hpp"
#include "index/index_optimizer.hpp"

int main() {
  using namespace amri;
  using namespace amri::assessment;

  struct Row {
    AttrMask mask;
    int permille;
  };
  const Row rows[] = {
      {0b001, 40},  {0b010, 100}, {0b100, 100}, {0b011, 40},
      {0b101, 160}, {0b110, 100}, {0b111, 460},
  };

  std::cout << "=== Table II workload (theta=5%, epsilon=0.1%, 4-bit IC) "
               "===\n\n";
  TablePrinter input({"access pattern", "frequency"});
  for (const Row& r : rows) {
    input.add_row({index::pattern_to_string(r.mask, 3),
                   TablePrinter::fmt_pct(r.permille / 1000.0)});
  }
  input.print(std::cout);

  auto feed = [&](Assessor& a) {
    for (int rep = 0; rep < 100; ++rep) {
      for (const Row& r : rows) {
        for (int i = 0; i < r.permille / 20; ++i) a.observe(r.mask);
      }
    }
  };

  index::WorkloadParams wp;
  wp.lambda_d = 1000.0;
  wp.lambda_r = 1000.0;
  wp.window_units = 10.0;
  wp.hash_cost = 1.0;
  wp.compare_cost = 1.0;
  index::OptimizerOptions oopts;
  oopts.bit_budget = 4;
  oopts.max_bits_per_attr = 4;
  const index::IndexOptimizer optimizer(index::CostModel(wp), oopts);

  auto report = [&](Assessor& a, const char* title) {
    feed(a);
    const auto res = a.results(0.05);
    std::cout << "\n--- " << title << " ---\n";
    TablePrinter t({"surviving pattern", "estimated frequency"});
    for (const auto& r : res) {
      t.add_row({index::pattern_to_string(r.mask, 3),
                 TablePrinter::fmt_pct(r.frequency)});
    }
    t.print(std::cout);
    const auto best = optimizer.optimize(3, to_pattern_frequencies(res));
    std::cout << "selected IC: " << best.config.to_string()
              << "  (C_D = " << TablePrinter::fmt(best.cost, 1) << ")\n";
    return best.config;
  };

  Csria csria(0b111, 0.001);
  const auto csria_ic = report(csria, "CSRIA survivors (paper: B,C,AC,BC,ABC)");

  // The paper's random combination folds <A,B,*> into <A,*,*>; pick a seed
  // exhibiting that outcome deterministically.
  index::IndexConfig cdia_ic;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Cdia probe(0b111, 0.001, stats::CombinePolicy::kRandom, seed);
    feed(probe);
    bool folded = false;
    for (const auto& r : probe.results(0.05)) {
      if (r.mask == 0b001 && r.frequency > 0.07) folded = true;
    }
    if (folded) {
      Cdia cdia(0b111, 0.001, stats::CombinePolicy::kRandom, seed);
      cdia_ic = report(cdia, "CDIA survivors (random combination)");
      break;
    }
  }

  // Compare both ICs under the true workload.
  std::vector<index::PatternFrequency> truth;
  for (const Row& r : rows) {
    truth.push_back({r.mask, r.permille / 1000.0});
  }
  const index::CostModel model(wp);
  std::cout << "\n--- true-cost comparison (paper Eq. 1, true frequencies) "
               "---\n";
  TablePrinter cmp({"assessment", "selected IC", "true C_D"});
  cmp.add_row({"CSRIA", csria_ic.to_string(),
               TablePrinter::fmt(model.paper_cost(csria_ic, truth), 1)});
  cmp.add_row({"CDIA", cdia_ic.to_string(),
               TablePrinter::fmt(model.paper_cost(cdia_ic, truth), 1)});
  cmp.print(std::cout);
  std::cout << "(paper: CSRIA -> [B:1 C:3]; CDIA -> true optimum "
               "[A:1 B:1 C:2])\n";
  return 0;
}
