// ABL-RETAIN — what to do with assessment statistics between tuning
// decisions: reset (fresh window, the paper-style segmented assessment),
// keep (continuous, slow to notice drift), or decay (aged history).
// The drifting workload punishes kKeep: stale hot patterns keep arguing
// for yesterday's index configuration.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace amri;
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  EvalParams params = EvalParams::from_config(cfg);
  if (!cfg.has("sim_seconds")) params.duration_seconds = 240.0;
  if (!cfg.has("warmup")) params.warmup_seconds = 60.0;

  std::cout << "=== Ablation: statistics retention across tuning windows "
               "(AMRI, CDIA-hc) ===\n\n";
  TablePrinter table({"retention", "outputs", "migrations", "stat_peak_kb"});
  const MethodSpec method{"AMRI", engine::IndexBackend::kAmri,
                          assessment::AssessorKind::kCdiaHighestCount, 0};
  const std::pair<tuner::StatsRetention, const char*> modes[] = {
      {tuner::StatsRetention::kReset, "reset"},
      {tuner::StatsRetention::kKeep, "keep"},
      {tuner::StatsRetention::kDecay, "decay(0.25)"},
  };
  for (const auto& [mode, label] : modes) {
    const auto scenario = make_scenario(params);
    auto eopts = make_executor_options(scenario, params, method);
    eopts.stem.amri_tuner->retention = mode;
    engine::Executor ex(scenario.query(), eopts);
    const auto src = scenario.make_source();
    const auto r = ex.run(*src);
    std::uint64_t migrations = 0;
    for (const auto& s : r.states) migrations += s.migrations;
    table.add_row({label,
                   TablePrinter::fmt_int(static_cast<long long>(r.outputs)),
                   TablePrinter::fmt_int(static_cast<long long>(migrations)),
                   TablePrinter::fmt_int(
                       static_cast<long long>(r.peak_memory / 1024))});
    std::cerr << "[abl-retain] " << label << " outputs=" << r.outputs
              << "\n";
  }
  table.print(std::cout);
  return 0;
}
