// ABL-BATCH — routing-decision reuse (paper §I: AMR "dynamically routes
// batches of tuples"). This sweeps `EddyOptions::decision_reuse` — how many
// same-done-mask partials share one cached routing decision — NOT the
// executor-level `--batch-size` (which moves arrivals through the pipeline
// together without changing any decision). Larger reuse amortises the
// per-decision routing cost but reacts to drift one batch late; the sweep
// shows the trade-off under the standard drifting workload.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace amri;
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  EvalParams params = EvalParams::from_config(cfg);
  if (!cfg.has("sim_seconds")) params.duration_seconds = 240.0;
  if (!cfg.has("warmup")) params.warmup_seconds = 60.0;

  std::cout << "=== Ablation: routing batch size (AMRI, CDIA-hc) ===\n\n";
  TablePrinter table({"batch", "outputs", "routing_decisions",
                      "charged_virtual_s"});
  const MethodSpec method{"AMRI", engine::IndexBackend::kAmri,
                          assessment::AssessorKind::kCdiaHighestCount, 0};
  for (const std::size_t batch : {1u, 4u, 16u, 64u, 256u}) {
    const auto scenario = make_scenario(params);
    auto eopts = make_executor_options(scenario, params, method);
    eopts.eddy.decision_reuse = batch;
    engine::Executor ex(scenario.query(), eopts);
    const auto src = scenario.make_source();
    const auto r = ex.run(*src);
    table.add_row({TablePrinter::fmt_int(static_cast<long long>(batch)),
                   TablePrinter::fmt_int(static_cast<long long>(r.outputs)),
                   TablePrinter::fmt_int(
                       static_cast<long long>(r.routing_decisions)),
                   TablePrinter::fmt(r.charged_us / 1e6, 1)});
    std::cerr << "[abl-batch] batch=" << batch << " outputs=" << r.outputs
              << "\n";
  }
  table.print(std::cout);
  return 0;
}
