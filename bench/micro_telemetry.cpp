// MICRO-TEL — cost of the telemetry layer, measured with google-benchmark:
//   * the disabled path (no telemetry bound) must cost nothing beyond a
//     null-pointer branch — probe timings with and without a bound handle
//     quantify the enabled overhead and confirm the disabled one matches
//     the uninstrumented baseline in micro_index_ops;
//   * raw registry operation costs (counter add, histogram observe, event
//     emit) bound the per-call price of each instrumentation site;
//   * the profiler scope and span-stage sites follow the same contract:
//     with no profiler / no active span they must reduce to a branch.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "index/bit_address_index.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace amri;
using namespace amri::index;

constexpr std::size_t kTuples = 10000;
constexpr std::int64_t kDomain = 1000;

std::vector<std::unique_ptr<Tuple>> make_tuples(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<Tuple>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto t = std::make_unique<Tuple>();
    t->seq = i;
    for (int a = 0; a < 3; ++a) {
      t->values.push_back(static_cast<Value>(
          rng.below(static_cast<std::uint64_t>(kDomain))));
    }
    out.push_back(std::move(t));
  }
  return out;
}

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

// Probe with telemetry detached (state.range(0) == 0) vs bound (== 1).
// The detached case is the default for every experiment binary; it should
// be indistinguishable from BM_BitAddress_ProbeExact in micro_index_ops.
void BM_Probe_TelemetryToggle(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 2);
  BitAddressIndex idx(jas3(), IndexConfig({4, 4, 4}), BitMapper::hashing(3));
  telemetry::Telemetry telemetry;
  if (state.range(0) != 0) idx.bind_telemetry(&telemetry, "bench.index");
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(3);
  std::vector<const Tuple*> out;
  for (auto _ : state) {
    const Tuple& target = *tuples[rng.below(kTuples)];
    ProbeKey key;
    key.mask = 0b011;  // wildcard: exercises the fan-out histogram path
    key.values = {target.at(0), target.at(1), 0};
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Probe_TelemetryToggle)->Arg(0)->Arg(1);

void BM_Counter_Add(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("bench.counter");
  for (auto _ : state) {
    c.add();
    benchmark::DoNotOptimize(c.value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Counter_Add);

void BM_Histogram_Observe(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  telemetry::Histogram& h = reg.histogram(
      "bench.hist", telemetry::Histogram::exponential_bounds(0.05, 2.0, 16));
  Rng rng(11);
  for (auto _ : state) {
    h.observe(static_cast<double>(rng.below(1000)) * 0.01);
    benchmark::DoNotOptimize(h.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Histogram_Observe);

void BM_Event_Emit(benchmark::State& state) {
  telemetry::Telemetry telemetry;
  for (auto _ : state) {
    benchmark::DoNotOptimize(telemetry.emit(
        telemetry::EventKind::kRoutingChange, 0,
        "{\"from\":1,\"to\":2}"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Event_Emit);

// Phase profiler scope: detached (state.range(0) == 0, the default for
// every experiment binary) vs enabled. Detached must cost a null check.
void BM_ScopedPhase_Toggle(benchmark::State& state) {
  telemetry::MetricsRegistry reg;
  telemetry::Profiler profiler(reg);
  telemetry::Profiler* bound = state.range(0) != 0 ? &profiler : nullptr;
  for (auto _ : state) {
    telemetry::ScopedPhase scope(bound, telemetry::Phase::kProbe);
    benchmark::DoNotOptimize(bound);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopedPhase_Toggle)->Arg(0)->Arg(1);

// Span-stage instrumentation site, mirroring the guard every producer
// uses: Arg(0) = telemetry detached (null check only), Arg(1) = bound but
// tuple not sampled (active_span() == 0), Arg(2) = sampled (full emit).
void BM_SpanStage_Toggle(benchmark::State& state) {
  telemetry::Telemetry telemetry;
  telemetry::Telemetry* bound = state.range(0) != 0 ? &telemetry : nullptr;
  if (state.range(0) == 2) telemetry.begin_span();
  for (auto _ : state) {
    const std::uint64_t span = bound != nullptr ? bound->active_span() : 0;
    if (span != 0 && bound != nullptr) {
      bound->emit(telemetry::EventKind::kSpan, 0,
                  "{\"span\":1,\"stage\":\"hop\",\"probe_ns\":120}");
    }
    benchmark::DoNotOptimize(span);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanStage_Toggle)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

AMRI_BENCHMARK_MAIN()
