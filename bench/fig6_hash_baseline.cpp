// FIG6-B — Paper Figure 6 (state-of-art AMR hash indexing): the
// access-module baseline [Raman et al.] with 1..7 hash indices per state,
// tuned with CDIA-hc + conventional selection, under the same workload and
// memory budget as AMRI. The paper observes every configuration dying of
// memory exhaustion within half the run (few indices -> scan backlog; many
// indices -> maintenance + per-tuple key-link memory).
//
// Usage: fig6_hash_baseline [key=value ...]
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace amri;
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  EvalParams params = EvalParams::from_config(cfg);
  if (!cfg.has("memory_budget")) {
    // Tighter default budget than the other figures: the paper's point is
    // that multi-hash maintenance memory (per-tuple key links x modules)
    // exhausts the system, so set the budget between AMRI's footprint and
    // the heavier module configurations'.
    params.memory_budget = 4404019;  // 4.2 MiB
  }
  const auto scenario = make_scenario(params);

  std::cout << "=== Figure 6: access-module baseline, 1..7 hash indices ===\n"
            << "memory budget: " << params.memory_budget / 1024
            << " KiB, run length: " << params.duration_seconds
            << " sim-seconds\n\n";

  std::vector<MethodSpec> methods;
  for (std::size_t k = 1; k <= 7; ++k) {
    methods.push_back(MethodSpec{"hash x" + std::to_string(k),
                                 engine::IndexBackend::kAccessModules,
                                 assessment::AssessorKind::kCdiaHighestCount,
                                 k});
  }
  // AMRI reference under the identical budget.
  methods.push_back(MethodSpec{"AMRI", engine::IndexBackend::kAmri,
                               assessment::AssessorKind::kCdiaHighestCount, 0});

  const bool tracing = cfg.has("trace_out");
  std::vector<engine::RunResult> results;
  for (const auto& m : methods) {
    telemetry::Telemetry telemetry;
    results.push_back(run_method(scenario, params, m,
                                 tracing ? &telemetry : nullptr));
    if (tracing) maybe_write_trace(cfg, telemetry, m.label);
    std::cerr << "[fig6b] " << m.label << ": outputs="
              << results.back().outputs
              << (results.back().died_at
                      ? " died_at=" + TablePrinter::fmt(
                            micros_to_seconds(*results.back().died_at), 0)
                      : std::string(" survived"))
              << "\n";
  }

  TablePrinter table({"config", "outputs", "died_at_sec", "peak_mem_kb",
                      "scan_fallback_states", "dropped_arrivals"});
  for (std::size_t i = 0; i < methods.size(); ++i) {
    const auto& r = results[i];
    table.add_row(
        {methods[i].label,
         TablePrinter::fmt_int(static_cast<long long>(r.outputs)),
         r.died_at ? TablePrinter::fmt(micros_to_seconds(*r.died_at), 0)
                   : "-",
         TablePrinter::fmt_int(static_cast<long long>(r.peak_memory / 1024)),
         TablePrinter::fmt_int(static_cast<long long>(r.states.size())),
         TablePrinter::fmt_int(
             static_cast<long long>(r.arrivals_dropped))});
  }
  table.print(std::cout);
  maybe_write_csv(cfg, table, "fig6_hash_baseline");
  std::vector<BenchRecord> records;
  for (std::size_t i = 0; i < methods.size(); ++i) {
    append_run_records(records, "fig6_hash_baseline", methods[i].label,
                       results[i]);
  }
  maybe_write_json(cfg, records);

  // Paper claim: AMRI produces ~93% more results than the best hash config.
  std::uint64_t best_hash = 0;
  for (std::size_t i = 0; i + 1 < results.size(); ++i) {
    best_hash = std::max(best_hash, results[i].outputs);
  }
  const std::uint64_t amri = results.back().outputs;
  if (best_hash > 0) {
    std::cout << "\nAMRI vs best hash configuration: "
              << TablePrinter::fmt_pct(
                     static_cast<double>(amri) / best_hash - 1.0)
              << " more results (paper: +93%)\n";
  }
  return 0;
}
