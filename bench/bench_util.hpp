// Shared utilities for the figure/table reproduction benches: the paper's
// evaluation scenario with knobs exposed as key=value command-line
// overrides, and helpers to run one configuration and print curves.
#pragma once

#include <cctype>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/config.hpp"
#include "common/table_printer.hpp"
#include "engine/executor.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "workload/scenario.hpp"

namespace amri::bench {

/// Parameters of one evaluation run; defaults reproduce the paper's setup
/// at laptop scale (4-way join, 3 join attributes per state, drifting
/// selectivities, 64-bucket-word IC with a 12-bit practical budget).
struct EvalParams {
  // Workload (calibrated so a poorly-indexed system saturates, see below).
  std::size_t streams = 4;
  double rate_per_sec = 100.0;
  double window_seconds = 40.0;
  double phase_seconds = 45.0;
  std::int64_t hot_domain = 27;
  std::int64_t cold_domain = 95;
  std::uint64_t seed = 1;
  // Run shape (paper: ~25-30 minute runs incl. 15 min training; we scale
  // to 90 s training + 480 s measurement of virtual time).
  double warmup_seconds = 90.0;
  double duration_seconds = 480.0;
  double sample_seconds = 60.0;
  // Tuning.
  double epsilon = 0.05;  ///< paper: delta = .05
  double theta = 0.10;    ///< paper: theta = .1
  std::uint64_t reassess_every = 1500;
  int bit_budget = 8;
  int max_bits_per_attr = 8;
  // Environment.
  std::size_t memory_budget = 5767168;  ///< 5.5 MiB logical budget
  double exploration_rate = 0.10;
  // Modelled operation costs (virtual microseconds). Calibrated so the
  // paper's workload saturates a poorly-indexed system (full scans fall
  // behind the arrival schedule) while a well-tuned index keeps up —
  // reproducing the throughput separation and OOM deaths of Figures 6/7.
  double hash_cost = 0.25;
  double compare_cost = 0.35;
  double bucket_cost = 0.1;
  double route_cost = 0.1;
  double insert_cost = 0.1;

  static EvalParams from_config(const Config& cfg) {
    EvalParams p;
    p.streams = static_cast<std::size_t>(
        cfg.int_or("streams", static_cast<std::int64_t>(p.streams)));
    p.rate_per_sec = cfg.double_or("rate", p.rate_per_sec);
    p.window_seconds = cfg.double_or("window", p.window_seconds);
    p.phase_seconds = cfg.double_or("phase", p.phase_seconds);
    p.hot_domain = cfg.int_or("hot_domain", p.hot_domain);
    p.cold_domain = cfg.int_or("cold_domain", p.cold_domain);
    p.seed = static_cast<std::uint64_t>(cfg.int_or("seed", 1));
    p.warmup_seconds = cfg.double_or("warmup", p.warmup_seconds);
    p.duration_seconds = cfg.double_or("sim_seconds", p.duration_seconds);
    p.sample_seconds = cfg.double_or("sample", p.sample_seconds);
    p.epsilon = cfg.double_or("epsilon", p.epsilon);
    p.theta = cfg.double_or("theta", p.theta);
    p.reassess_every = static_cast<std::uint64_t>(
        cfg.int_or("reassess_every", static_cast<std::int64_t>(p.reassess_every)));
    p.bit_budget = static_cast<int>(cfg.int_or("bits", p.bit_budget));
    p.max_bits_per_attr =
        static_cast<int>(cfg.int_or("max_bits", p.max_bits_per_attr));
    p.memory_budget = static_cast<std::size_t>(
        cfg.int_or("memory_budget", static_cast<std::int64_t>(p.memory_budget)));
    p.exploration_rate = cfg.double_or("explore", p.exploration_rate);
    p.hash_cost = cfg.double_or("c_h", p.hash_cost);
    p.compare_cost = cfg.double_or("c_c", p.compare_cost);
    p.bucket_cost = cfg.double_or("c_b", p.bucket_cost);
    p.route_cost = cfg.double_or("c_r", p.route_cost);
    p.insert_cost = cfg.double_or("c_i", p.insert_cost);
    return p;
  }
};

/// A named run configuration: backend + assessor.
struct MethodSpec {
  std::string label;
  engine::IndexBackend backend = engine::IndexBackend::kAmri;
  assessment::AssessorKind assessor =
      assessment::AssessorKind::kCdiaHighestCount;
  std::size_t max_modules = 3;  ///< access-module backends
};

inline workload::Scenario make_scenario(const EvalParams& p) {
  workload::ScenarioOptions o;
  o.streams = p.streams;
  o.rate_per_sec = p.rate_per_sec;
  o.window_seconds = p.window_seconds;
  o.phase_seconds = p.phase_seconds;
  o.num_phases = 512;  // effectively unbounded drift
  o.hot_domain = p.hot_domain;
  o.cold_domain = p.cold_domain;
  o.seed = p.seed;
  o.generate_seconds = 0.0;  // unbounded source; executor stops the run
  return workload::Scenario(workload::ScenarioOptions(o));
}

inline engine::ExecutorOptions make_executor_options(
    const workload::Scenario& sc, const EvalParams& p, const MethodSpec& m) {
  auto eopts = sc.default_executor_options();
  eopts.costs.hash_cost_us = p.hash_cost;
  eopts.costs.compare_cost_us = p.compare_cost;
  eopts.costs.bucket_visit_cost_us = p.bucket_cost;
  eopts.costs.route_cost_us = p.route_cost;
  eopts.costs.insert_cost_us = p.insert_cost;
  eopts.costs.delete_cost_us = p.insert_cost;
  eopts.model_params.hash_cost = p.hash_cost;
  eopts.model_params.compare_cost = p.compare_cost;
  eopts.model_params.bucket_cost = p.bucket_cost;
  eopts.duration = seconds_to_micros(p.duration_seconds);
  eopts.warmup = seconds_to_micros(p.warmup_seconds);
  eopts.sample_every = seconds_to_micros(p.sample_seconds);
  eopts.memory_budget = p.memory_budget;
  eopts.eddy.routing.exploration_rate = p.exploration_rate;
  eopts.eddy.routing.seed = p.seed * 7919 + 13;

  eopts.stem.backend = m.backend;
  const std::size_t n = sc.query().layout(0).jas.size();
  // Even starting allocation over the budget.
  std::vector<std::uint8_t> bits(n, 0);
  for (int b = 0; b < p.bit_budget; ++b) {
    ++bits[static_cast<std::size_t>(b) % n];
  }
  eopts.stem.initial_config = index::IndexConfig(bits);
  // Access-module backends start with single-attribute modules.
  eopts.stem.initial_modules.clear();
  for (std::size_t i = 0; i < n && i < m.max_modules; ++i) {
    eopts.stem.initial_modules.push_back(AttrMask{1} << i);
  }

  tuner::TunerOptions t;
  t.assessor = m.assessor;
  t.assessor_params.epsilon = p.epsilon;
  t.assessor_params.seed = p.seed * 31 + 5;
  t.theta = p.theta;
  t.reassess_every = p.reassess_every;
  t.optimizer.bit_budget = p.bit_budget;
  t.optimizer.max_bits_per_attr = p.max_bits_per_attr;
  eopts.stem.amri_tuner = t;

  tuner::HashTunerOptions ht;
  ht.assessor = m.assessor;
  ht.assessor_params.epsilon = p.epsilon;
  ht.assessor_params.seed = p.seed * 31 + 5;
  ht.theta = p.theta;
  ht.reassess_every = p.reassess_every;
  ht.max_modules = m.max_modules;
  eopts.stem.module_tuner = ht;
  return eopts;
}

/// Run one method over the shared scenario. With `telemetry` set the run is
/// fully instrumented (events + metrics land in the handle for export).
inline engine::RunResult run_method(const workload::Scenario& sc,
                                    const EvalParams& p, const MethodSpec& m,
                                    telemetry::Telemetry* telemetry = nullptr) {
  auto eopts = make_executor_options(sc, p, m);
  eopts.telemetry = telemetry;
  engine::Executor ex(sc.query(), eopts);
  const auto src = sc.make_source();
  return ex.run(*src);
}

/// If the config carries trace_out=<prefix> (or --trace-out <prefix>),
/// dump `telemetry` to <prefix>_<label>.jsonl. Benches call this once per
/// method run so every method's trace lands in its own file.
inline void maybe_write_trace(const Config& cfg,
                              const telemetry::Telemetry& telemetry,
                              const std::string& label) {
  const auto prefix = cfg.get_string("trace_out");
  if (!prefix) return;
  std::string slug = label;
  for (char& c : slug) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
          c == '_')) {
      c = '_';
    }
  }
  const std::string path = *prefix + "_" + slug + ".jsonl";
  if (telemetry::write_trace_file(path, telemetry)) {
    std::cerr << "trace: wrote " << path << "\n";
  } else {
    std::cerr << "trace: cannot write " << path << "\n";
  }
}

/// If the config carries json=<path> (or --json <path>), dump `records`
/// to that path in the shared bench-JSON schema (bench_json.hpp), the
/// format tools/run_bench.py aggregates into BENCH_<date>.json.
inline void maybe_write_json(const Config& cfg,
                             const std::vector<BenchRecord>& records) {
  const auto path = cfg.get_string("json");
  if (!path) return;
  if (write_bench_json(*path, records)) {
    std::cerr << "bench-json: wrote " << *path << " (" << records.size()
              << " records)\n";
  } else {
    std::cerr << "bench-json: cannot write " << *path << "\n";
  }
}

/// The standard per-method summary records every figure bench emits:
/// final outputs, death time (-1 while alive), and peak memory.
inline void append_run_records(std::vector<BenchRecord>& records,
                               const std::string& bench,
                               const std::string& label,
                               const engine::RunResult& r) {
  const std::string key = bench + "/" + label;
  records.push_back(
      {key, "outputs", static_cast<double>(r.outputs)});
  records.push_back({key, "died_at_sec",
                     r.died_at ? micros_to_seconds(*r.died_at) : -1.0});
  records.push_back(
      {key, "peak_memory_bytes", static_cast<double>(r.peak_memory)});
}

/// If the config carries csv_dir=<path>, dump `table` to
/// <path>/<name>.csv (directory must exist) and report where it went.
inline void maybe_write_csv(const Config& cfg, const TablePrinter& table,
                            const std::string& name) {
  const auto dir = cfg.get_string("csv_dir");
  if (!dir) return;
  const std::string path = *dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "csv: cannot write " << path << "\n";
    return;
  }
  table.print_csv(out);
  std::cerr << "csv: wrote " << path << "\n";
}

/// Build the side-by-side curve table (also reusable for CSV export).
inline TablePrinter curve_table(const std::vector<MethodSpec>& methods,
                                const std::vector<engine::RunResult>& results,
                                TimeMicros duration,
                                TimeMicros sample_every) {
  std::vector<std::string> header = {"t_sec"};
  for (const auto& m : methods) header.push_back(m.label);
  TablePrinter table(std::move(header));
  for (TimeMicros t = 0; t <= duration; t += sample_every) {
    std::vector<std::string> row = {
        TablePrinter::fmt(micros_to_seconds(t), 0)};
    for (const auto& r : results) {
      const bool dead = r.died_at.has_value() && *r.died_at <= t;
      row.push_back(TablePrinter::fmt_int(
                        static_cast<long long>(r.outputs_at(t))) +
                    (dead ? " (dead)" : ""));
    }
    table.add_row(std::move(row));
  }
  return table;
}

/// Print the cumulative-throughput curves of several runs side by side.
inline void print_curves(std::ostream& os,
                         const std::vector<MethodSpec>& methods,
                         const std::vector<engine::RunResult>& results,
                         TimeMicros duration, TimeMicros sample_every) {
  curve_table(methods, results, duration, sample_every).print(os);
}

}  // namespace amri::bench
