// FIG6-A — Paper Figure 6 (index assessment methods): cumulative
// throughput of the AMRI bit-address index tuned by each assessment
// method — SRIA, CSRIA, DIA, CDIA-random, CDIA-highest-count — over the
// drifting 4-way-join workload (delta = .05, theta = .1).
//
// Expected shape (paper §V): both CDIA variants on top, CDIA-hc best
// (+~19% over DIA/SRIA, +~30% over CSRIA); DIA == SRIA (same statistics,
// nothing compressed).
//
// Usage: fig6_assessment [key=value ...]   e.g. sim_seconds=300 seed=7
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace amri;
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  const EvalParams params = EvalParams::from_config(cfg);
  // Assessment-method differences are second-order (±20% in the paper), so
  // aggregate across a few workload seeds to beat run-to-run variance.
  const auto num_seeds = static_cast<std::uint64_t>(cfg.int_or("seeds", 2));

  const std::vector<MethodSpec> methods = {
      {"SRIA", engine::IndexBackend::kAmri, assessment::AssessorKind::kSria, 0},
      {"CSRIA", engine::IndexBackend::kAmri, assessment::AssessorKind::kCsria, 0},
      {"DIA", engine::IndexBackend::kAmri, assessment::AssessorKind::kDia, 0},
      {"CDIA-random", engine::IndexBackend::kAmri,
       assessment::AssessorKind::kCdiaRandom, 0},
      {"CDIA-hc", engine::IndexBackend::kAmri,
       assessment::AssessorKind::kCdiaHighestCount, 0},
  };

  std::cout << "=== Figure 6: AMRI throughput by assessment method ===\n"
            << "workload: 4-way join, 3 join attrs/state, drifting "
               "selectivities; epsilon=" << params.epsilon
            << " theta=" << params.theta << "\n\n";

  std::vector<engine::RunResult> first_seed_results;
  std::vector<std::uint64_t> total_outputs(methods.size(), 0);
  std::vector<std::uint64_t> total_migrations(methods.size(), 0);
  std::vector<std::size_t> peak_memory(methods.size(), 0);
  for (std::uint64_t s = 0; s < num_seeds; ++s) {
    EvalParams p = params;
    p.seed = params.seed + s;
    const auto scenario = make_scenario(p);
    for (std::size_t i = 0; i < methods.size(); ++i) {
      // Trace only the first seed: one JSONL file per method.
      const bool tracing = s == 0 && cfg.has("trace_out");
      telemetry::Telemetry telemetry;
      auto r = run_method(scenario, p, methods[i],
                          tracing ? &telemetry : nullptr);
      if (tracing) maybe_write_trace(cfg, telemetry, methods[i].label);
      std::cerr << "[fig6] seed=" << p.seed << " " << methods[i].label
                << ": outputs=" << r.outputs << "\n";
      total_outputs[i] += r.outputs;
      for (const auto& st : r.states) total_migrations[i] += st.migrations;
      peak_memory[i] = std::max(peak_memory[i], r.peak_memory);
      if (s == 0) first_seed_results.push_back(std::move(r));
    }
  }

  std::cout << "--- cumulative throughput curves (seed "
            << params.seed << ") ---\n";
  print_curves(std::cout, methods, first_seed_results,
               seconds_to_micros(params.duration_seconds),
               seconds_to_micros(params.sample_seconds));

  std::cout << "\n--- totals over " << num_seeds
            << " seed(s) (cumulative output tuples) ---\n";
  TablePrinter totals({"method", "outputs", "vs CDIA-hc", "migrations",
                       "peak_mem_kb"});
  const double best = static_cast<double>(total_outputs.back());
  for (std::size_t i = 0; i < methods.size(); ++i) {
    totals.add_row(
        {methods[i].label,
         TablePrinter::fmt_int(static_cast<long long>(total_outputs[i])),
         TablePrinter::fmt_pct(
             best > 0 ? static_cast<double>(total_outputs[i]) / best : 0.0),
         TablePrinter::fmt_int(static_cast<long long>(total_migrations[i])),
         TablePrinter::fmt_int(
             static_cast<long long>(peak_memory[i] / 1024))});
  }
  totals.print(std::cout);
  maybe_write_csv(cfg, totals, "fig6_assessment_totals");
  maybe_write_csv(cfg,
                  curve_table(methods, first_seed_results,
                              seconds_to_micros(params.duration_seconds),
                              seconds_to_micros(params.sample_seconds)),
                  "fig6_assessment_curves");
  std::vector<BenchRecord> records;
  for (std::size_t i = 0; i < methods.size(); ++i) {
    records.push_back({"fig6_assessment/" + methods[i].label, "outputs",
                       static_cast<double>(total_outputs[i])});
    records.push_back({"fig6_assessment/" + methods[i].label, "migrations",
                       static_cast<double>(total_migrations[i])});
    records.push_back({"fig6_assessment/" + methods[i].label,
                       "peak_memory_bytes",
                       static_cast<double>(peak_memory[i])});
  }
  maybe_write_json(cfg, records);

  const double sria = static_cast<double>(total_outputs[0]);
  const double csria = static_cast<double>(total_outputs[1]);
  if (sria > 0 && csria > 0) {
    std::cout << "\nCDIA-hc vs SRIA/DIA: "
              << TablePrinter::fmt_pct(best / sria - 1.0)
              << " (paper: +19%)\nCDIA-hc vs CSRIA:    "
              << TablePrinter::fmt_pct(best / csria - 1.0)
              << " (paper: +30%)\n";
  }
  return 0;
}
