// FIG7 — Paper Figure 7 (overall comparison): cumulative results of
//   * AMRI  — bit-address index with CDIA-hc online tuning,
//   * the best adaptive hash (access-module) configuration,
//   * a non-adapting bit-address index (trained at warm-up, never retuned),
// under one memory budget. Paper: the hash baseline dies by ~half the run
// and AMRI ends +93% over it; the static bitmap dies later and AMRI ends
// +75% over it.
//
// Usage: fig7_overall [key=value ...]
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace amri;
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  const EvalParams params = EvalParams::from_config(cfg);
  const auto scenario = make_scenario(params);
  const auto hash_modules =
      static_cast<std::size_t>(cfg.int_or("hash_modules", 3));

  const std::vector<MethodSpec> methods = {
      {"AMRI", engine::IndexBackend::kAmri,
       assessment::AssessorKind::kCdiaHighestCount, 0},
      {"adaptive-hash", engine::IndexBackend::kAccessModules,
       assessment::AssessorKind::kCdiaHighestCount, hash_modules},
      {"static-bitmap", engine::IndexBackend::kStaticBitmap,
       assessment::AssessorKind::kCdiaHighestCount, 0},
  };

  std::cout << "=== Figure 7: AMRI vs state-of-art AMR indexing ===\n\n";

  const bool tracing = cfg.has("trace_out");
  std::vector<engine::RunResult> results;
  for (const auto& m : methods) {
    telemetry::Telemetry telemetry;
    results.push_back(run_method(scenario, params, m,
                                 tracing ? &telemetry : nullptr));
    if (tracing) maybe_write_trace(cfg, telemetry, m.label);
    std::cerr << "[fig7] " << m.label << ": outputs="
              << results.back().outputs << "\n";
  }

  print_curves(std::cout, methods, results,
               seconds_to_micros(params.duration_seconds),
               seconds_to_micros(params.sample_seconds));

  std::cout << "\n--- totals ---\n";
  TablePrinter table({"method", "outputs", "died_at_sec", "migrations",
                      "peak_mem_kb"});
  for (std::size_t i = 0; i < methods.size(); ++i) {
    const auto& r = results[i];
    std::uint64_t migrations = 0;
    for (const auto& s : r.states) migrations += s.migrations;
    table.add_row(
        {methods[i].label,
         TablePrinter::fmt_int(static_cast<long long>(r.outputs)),
         r.died_at ? TablePrinter::fmt(micros_to_seconds(*r.died_at), 0)
                   : "-",
         TablePrinter::fmt_int(static_cast<long long>(migrations)),
         TablePrinter::fmt_int(static_cast<long long>(r.peak_memory / 1024))});
  }
  table.print(std::cout);
  maybe_write_csv(cfg, table, "fig7_totals");
  std::vector<BenchRecord> records;
  for (std::size_t i = 0; i < methods.size(); ++i) {
    append_run_records(records, "fig7_overall", methods[i].label, results[i]);
  }
  maybe_write_json(cfg, records);
  maybe_write_csv(cfg,
                  curve_table(methods, results,
                              seconds_to_micros(params.duration_seconds),
                              seconds_to_micros(params.sample_seconds)),
                  "fig7_curves");

  const double amri = static_cast<double>(results[0].outputs);
  const double hash = static_cast<double>(results[1].outputs);
  const double bitmap = static_cast<double>(results[2].outputs);
  if (hash > 0) {
    std::cout << "\nAMRI vs adaptive hash:  "
              << TablePrinter::fmt_pct(amri / hash - 1.0)
              << " (paper: +93%)\n";
  }
  if (bitmap > 0) {
    std::cout << "AMRI vs static bitmap:  "
              << TablePrinter::fmt_pct(amri / bitmap - 1.0)
              << " (paper: +75%)\n";
  }
  return 0;
}
