// ABL-MAPPER — the paper's §III index-key-map assumption ("the range and
// estimated distribution of each attribute is known"): compare the three
// value->bits strategies under skewed values. Equi-width (range) cells
// overload on hot values; multiplicative hashing balances but destroys
// order (no interval pruning); equi-depth (quantile) cells balance AND
// preserve order. Reports bucket imbalance and probe work.
#include <iostream>
#include <memory>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/table_printer.hpp"
#include "index/bit_address_index.hpp"
#include "workload/distributions.hpp"

int main(int argc, char** argv) {
  using namespace amri;
  using namespace amri::index;

  const Config cfg = Config::from_args(argc, argv);
  const std::int64_t domain = cfg.int_or("domain", 4096);
  const double skew = cfg.double_or("skew", 1.1);
  const auto n = static_cast<std::size_t>(cfg.int_or("tuples", 50000));

  std::cout << "=== Ablation: value->bits mapping under Zipf(" << skew
            << ") values ===\n\n";

  workload::ZipfDistribution dist(domain, skew);
  Rng rng(11);
  std::vector<std::unique_ptr<Tuple>> tuples;
  std::vector<Value> sample;
  for (std::size_t i = 0; i < n; ++i) {
    auto t = std::make_unique<Tuple>();
    t->seq = i;
    t->values = {dist.sample(rng), dist.sample(rng), dist.sample(rng)};
    if (i % 5 == 0) sample.push_back(t->at(0));
    tuples.push_back(std::move(t));
  }

  const JoinAttributeSet jas({0, 1, 2});
  const IndexConfig ic({4, 4, 4});
  struct Case {
    const char* label;
    BitMapper mapper;
  };
  std::vector<Case> cases;
  cases.push_back({"hash", BitMapper::hashing(3)});
  cases.push_back({"range (equi-width)",
                   BitMapper::ranged({{0, domain - 1},
                                      {0, domain - 1},
                                      {0, domain - 1}})});
  cases.push_back(
      {"quantile (equi-depth)",
       BitMapper::quantile({sample, sample, sample}, 4)});

  TablePrinter table({"mapper", "occupied_buckets", "max_bucket",
                      "imbalance(max/mean)", "avg_probe_compares",
                      "range_probe_compares"});
  for (auto& c : cases) {
    BitAddressIndex idx(jas, ic, std::move(c.mapper));
    std::vector<const Tuple*> ptrs;
    for (const auto& t : tuples) ptrs.push_back(t.get());
    idx.bulk_load(ptrs);
    const auto occ = idx.occupancy();

    // Equality probe work on hot values (Zipf-distributed probes).
    Rng prng(12);
    std::uint64_t compares = 0;
    const int probes = 2000;
    std::vector<const Tuple*> out;
    for (int i = 0; i < probes; ++i) {
      ProbeKey key;
      key.mask = 0b001;
      key.values = {dist.sample(prng), 0, 0};
      out.clear();
      compares += idx.probe(key, out).tuples_compared;
    }

    // Interval probe work (order-preserving mappers prune cells).
    std::uint64_t range_compares = 0;
    for (int i = 0; i < 200; ++i) {
      const Value lo = static_cast<Value>(prng.below(domain - 64));
      RangeProbeKey key;
      key.bind(0, lo, lo + 63);
      out.clear();
      range_compares += idx.probe_range(key, out).tuples_compared;
    }

    table.add_row(
        {c.label,
         TablePrinter::fmt_int(static_cast<long long>(occ.occupied)),
         TablePrinter::fmt_int(static_cast<long long>(occ.max)),
         TablePrinter::fmt(occ.imbalance, 1),
         TablePrinter::fmt(static_cast<double>(compares) / probes, 0),
         TablePrinter::fmt(static_cast<double>(range_compares) / 200, 0)});
  }
  table.print(std::cout);
  return 0;
}
