// MICRO-WALL-PIPELINE — the wall-clock engine mode measured on real
// hardware with google-benchmark:
//   * kernel prefetch ablation: grouped probe_batch against a directory
//     far larger than L2, with the cross-key software prefetch on vs off.
//     Every probe is an exact bucket lookup at a hash-random address, so
//     the kernel is cache-miss bound — precomputing the batch's bucket
//     addresses and prefetching K keys ahead is the whole trick;
//   * end-to-end engine churn: a full executor run (drain → expiry →
//     insert → route) over bursty 2-stream arrivals with a ~100k-tuple
//     steady-state window, across engine modes. --engine wall with
//     overlap + prefetch disabled isolates the cross-run batching layer;
//     enabling them adds the prefetching probe kernel and the drain/route
//     overlap thread. The differential tests assert all modes produce
//     identical results; this measures what the reorganisation buys in
//     wall time.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "engine/executor.hpp"
#include "index/bit_address_index.hpp"

namespace {

using namespace amri;
using namespace amri::index;

constexpr std::size_t kWindow = 100000;  ///< stored tuples per benchmark
constexpr std::int64_t kDomain = 50000;

std::vector<std::unique_ptr<Tuple>> make_tuples(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<Tuple>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto t = std::make_unique<Tuple>();
    t->seq = i;
    t->ts = static_cast<TimeMicros>(i);
    for (int a = 0; a < 2; ++a) {
      t->values.push_back(
          static_cast<Value>(rng.below(static_cast<std::uint64_t>(kDomain))));
    }
    out.push_back(std::move(t));
  }
  return out;
}

/// Exact-lookup probe churn on a 100k-tuple window with 2^17 directory
/// slots (several MB of slot array — far beyond L2): every key fully
/// binds the JAS (the shape every complete-join probe has), so each probe
/// is one find() at a hash-random slot followed by tag-filtered tuple
/// dereferences. prefetch:0 is the plain grouped kernel; prefetch:1
/// precomputes bucket addresses, warms slots kPrefetchFar keys ahead and
/// the tag-matching tuples kPrefetchAhead keys ahead (the two-stage
/// pipeline the wall engine enables).
void BM_WallPipeline_KernelPrefetch(benchmark::State& state) {
  const bool prefetch = state.range(0) != 0;
  const auto batch = static_cast<std::size_t>(state.range(1));
  const auto tuples = make_tuples(kWindow, 7);
  BitAddressIndex idx(JoinAttributeSet({0, 1}), IndexConfig({0, 17}),
                      BitMapper::hashing(2));
  idx.set_prefetch(prefetch);
  for (const auto& t : tuples) idx.insert(t.get());

  Rng rng(11);
  std::vector<ProbeKey> keys(batch);
  std::vector<std::vector<const Tuple*>> outs(batch);
  std::vector<ProbeStats> stats(batch);
  std::uint64_t matches = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      const Tuple& probe_for = *tuples[rng.below(tuples.size())];
      keys[i].mask = 0b11;
      keys[i].values.clear();
      keys[i].values.push_back(probe_for.at(0));
      keys[i].values.push_back(probe_for.at(1));
      outs[i].clear();
      stats[i] = ProbeStats{};
    }
    idx.probe_batch(keys.data(), batch, outs.data(), stats.data());
    for (std::size_t i = 0; i < batch; ++i) matches += stats[i].matches;
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_WallPipeline_KernelPrefetch)
    ->ArgNames({"prefetch", "batch"})
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({0, 256})
    ->Args({1, 256})
    ->Unit(benchmark::kMicrosecond);

using namespace amri::engine;

class ReplaySource final : public TupleSource {
 public:
  explicit ReplaySource(const std::vector<Tuple>* tuples)
      : tuples_(tuples) {}
  std::optional<Tuple> next() override {
    if (pos_ >= tuples_->size()) return std::nullopt;
    return (*tuples_)[pos_++];
  }

 private:
  const std::vector<Tuple>* tuples_;
  std::size_t pos_ = 0;
};

/// Churn-workload join-attribute domain: ~20 window tuples share each
/// value, so every probe dereferences a bucket's worth of tag-matching
/// tuples — the dependent-load stream the probe kernel's near prefetch
/// stage targets. (The kernel ablation above keeps the wide kDomain,
/// isolating the slot stage on 1-2-entry buckets.)
constexpr std::int64_t kChurnDomain = 5000;

/// Bursty 2-stream arrivals: kBurst tuples share each timestamp, bursts
/// 1 ms of virtual time apart. A burst's modelled processing cost is below
/// the burst gap, so the executor keeps up (no unbounded backlog), but
/// within a burst the whole backlog is due at once — real multi-tuple
/// batches form, the wall path's mixed-stream partitions actually mix
/// streams, and the overlap worker has a non-empty backlog to drain.
constexpr std::size_t kBurst = 512;
constexpr std::size_t kChurnTuples = 300000;

std::vector<Tuple> make_bursty_stream(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Tuple t;
    t.stream = static_cast<StreamId>(rng.below(2));
    t.ts = static_cast<TimeMicros>(1000 * (i / kBurst));
    t.seq = static_cast<TupleSeq>(i);
    t.values.push_back(static_cast<Value>(
        rng.below(static_cast<std::uint64_t>(kChurnDomain))));
    out.push_back(t);
  }
  return out;
}

/// End-to-end churn: one full executor run per iteration over 300k bursty
/// arrivals. The window is ~195 bursts deep, so the steady state holds
/// ~100k tuples across the two states; every arrival probes its peer and
/// the window continuously expires. engine:0 is the virtual pipeline,
/// engine:1 the wall mode; overlap/prefetch gate the wall optimisations
/// (ignored under engine:0). Static bitmap backend and fixed routing keep
/// the tuner out of the wall-time signal.
void BM_WallPipeline_EngineChurn(benchmark::State& state) {
  const bool wall = state.range(0) != 0;
  const bool overlap = state.range(1) != 0;
  const bool prefetch = state.range(2) != 0;
  const auto batch = static_cast<std::size_t>(state.range(3));

  const QuerySpec base_q = make_complete_join_query(
      2, seconds_to_micros(0.001 * (kWindow / kBurst)));
  QuerySpec q = base_q;
  // WHERE filters give the drain path real per-tuple selection work — the
  // work the overlap thread hides behind routing.
  q.set_selection(0, Selection({FilterPredicate{0, CompareOp::kGe, 1},
                                FilterPredicate{0, CompareOp::kNe, kChurnDomain}}));
  q.set_selection(1, Selection({FilterPredicate{0, CompareOp::kGe, 1}}));
  const std::vector<Tuple> arrivals = make_bursty_stream(kChurnTuples, 29);

  std::uint64_t outputs = 0;
  std::uint64_t measured = 0;
  for (auto _ : state) {
    ExecutorOptions o;
    o.duration = seconds_to_micros(2.0);
    o.sample_every = seconds_to_micros(1.0);
    o.engine = wall ? EngineMode::kWall : EngineMode::kVirtual;
    o.wall_overlap = overlap;
    o.wall_probe_prefetch = prefetch;
    o.batch_size = batch;
    o.stem.backend = IndexBackend::kStaticBitmap;
    o.stem.initial_config = IndexConfig({17});
    o.eddy.routing.kind = RoutingPolicyKind::kFixed;
    Executor ex(q, o);
    ReplaySource src(&arrivals);
    const RunResult r = ex.run(src);
    outputs += r.outputs;
    measured += r.arrivals;
    benchmark::DoNotOptimize(outputs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kChurnTuples));
  state.counters["outputs_per_run"] = benchmark::Counter(
      static_cast<double>(outputs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_WallPipeline_EngineChurn)
    ->ArgNames({"engine", "overlap", "prefetch", "batch"})
    ->Args({0, 0, 0, 1})    // virtual tuple-at-a-time baseline
    ->Args({0, 0, 0, 64})   // virtual batched
    ->Args({1, 0, 0, 64})   // wall: cross-run batching only
    ->Args({1, 1, 1, 64})   // wall: + prefetch + overlap
    ->Args({1, 0, 0, 256})
    ->Args({1, 1, 1, 256})
    ->Unit(benchmark::kMillisecond);

}  // namespace

AMRI_BENCHMARK_MAIN()
