// MICRO-IDX — §III claims, measured on real hardware with google-benchmark:
//   * bit-address index maintenance is cheap and independent of how many
//     access patterns it serves;
//   * multi-hash access modules pay per-module insert/erase work;
//   * probe cost: exact-pattern BAI probes touch one bucket; wildcard
//     probes enumerate candidate buckets; module-less patterns full-scan;
//   * migration (IC change) rehashes each stored tuple once.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "index/access_module_set.hpp"
#include "index/bit_address_index.hpp"
#include "index/ordered_index.hpp"
#include "index/scan_index.hpp"

namespace {

using namespace amri;
using namespace amri::index;

constexpr std::size_t kTuples = 10000;
constexpr std::int64_t kDomain = 1000;

std::vector<std::unique_ptr<Tuple>> make_tuples(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<Tuple>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto t = std::make_unique<Tuple>();
    t->seq = i;
    for (int a = 0; a < 3; ++a) {
      t->values.push_back(static_cast<Value>(
          rng.below(static_cast<std::uint64_t>(kDomain))));
    }
    out.push_back(std::move(t));
  }
  return out;
}

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

std::vector<AttrMask> module_masks(std::size_t k) {
  const AttrMask all[] = {0b001, 0b010, 0b100, 0b011, 0b101, 0b110, 0b111};
  return {all, all + k};
}

void BM_BitAddress_Insert(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 1);
  const auto bits = static_cast<std::uint8_t>(state.range(0));
  for (auto _ : state) {
    BitAddressIndex idx(jas3(), IndexConfig({bits, bits, bits}),
                        BitMapper::hashing(3));
    for (const auto& t : tuples) idx.insert(t.get());
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTuples));
}
BENCHMARK(BM_BitAddress_Insert)->Arg(2)->Arg(4);

void BM_AccessModules_Insert(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 1);
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    AccessModuleSet idx(jas3(), module_masks(k));
    for (const auto& t : tuples) idx.insert(t.get());
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTuples));
}
BENCHMARK(BM_AccessModules_Insert)->Arg(1)->Arg(3)->Arg(5)->Arg(7);

// IC sized so occupancy stays near the paper's balanced-bucket goal
// (~1.5 tuples/bucket) at every scale arg.
IndexConfig config_for(std::size_t tuples) {
  return tuples <= 20000 ? IndexConfig({4, 4, 4}) : IndexConfig({6, 5, 5});
}

void BM_BitAddress_ProbeExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tuples = make_tuples(n, 2);
  BitAddressIndex idx(jas3(), config_for(n), BitMapper::hashing(3));
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(3);
  std::vector<const Tuple*> out;
  for (auto _ : state) {
    const Tuple& target = *tuples[rng.below(n)];
    ProbeKey key;
    key.mask = 0b111;
    key.values = {target.at(0), target.at(1), target.at(2)};
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitAddress_ProbeExact)->Arg(10000)->Arg(100000);

// The pre-rewrite bucket directory — a sparse unordered_map of vectors —
// kept alive as an in-binary baseline so one run measures the flat
// open-addressing directory against it (the probe+insert speedup recorded
// in BENCH_<date>.json tracks this pair).
struct UnorderedDirectoryIndex {
  JoinAttributeSet jas = jas3();
  IndexConfig config;
  BitMapper mapper = BitMapper::hashing(3);
  std::unordered_map<BucketId, std::vector<const Tuple*>> buckets;
  std::size_t size = 0;

  explicit UnorderedDirectoryIndex(IndexConfig c) : config(std::move(c)) {}

  BucketId bucket_of(const Tuple& t) const {
    BucketId id = 0;
    for (std::size_t pos = 0; pos < config.num_attrs(); ++pos) {
      const int bits = config.bits(pos);
      if (bits == 0) continue;
      id |= mapper.map(pos, t.at(jas.tuple_attr(pos)), bits)
            << config.shift_of(pos);
    }
    return id;
  }

  void insert(const Tuple* t) {
    buckets[bucket_of(*t)].push_back(t);
    ++size;
  }

  void erase(const Tuple* t) {
    const auto it = buckets.find(bucket_of(*t));
    if (it == buckets.end()) return;
    auto& bucket = it->second;
    const auto pos = std::find(bucket.begin(), bucket.end(), t);
    if (pos == bucket.end()) return;
    *pos = bucket.back();
    bucket.pop_back();
    if (bucket.empty()) buckets.erase(it);
    --size;
  }

  void probe_exact(const ProbeKey& key, std::vector<const Tuple*>& out) const {
    BucketId id = 0;
    for (std::size_t pos = 0; pos < config.num_attrs(); ++pos) {
      const int bits = config.bits(pos);
      if (bits == 0) continue;
      id |= mapper.map(pos, key.values[pos], bits) << config.shift_of(pos);
    }
    const auto it = buckets.find(id);
    if (it == buckets.end()) return;
    for (const Tuple* t : it->second) {
      if (key.matches(*t, jas)) out.push_back(t);
    }
  }
};

void BM_UnorderedBaseline_Insert(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 1);
  const auto bits = static_cast<std::uint8_t>(state.range(0));
  for (auto _ : state) {
    UnorderedDirectoryIndex idx(IndexConfig({bits, bits, bits}));
    for (const auto& t : tuples) idx.insert(t.get());
    benchmark::DoNotOptimize(idx.size);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTuples));
}
BENCHMARK(BM_UnorderedBaseline_Insert)->Arg(2)->Arg(4);

void BM_UnorderedBaseline_ProbeExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto tuples = make_tuples(n, 2);
  UnorderedDirectoryIndex idx(config_for(n));
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(3);
  std::vector<const Tuple*> out;
  for (auto _ : state) {
    const Tuple& target = *tuples[rng.below(n)];
    ProbeKey key;
    key.mask = 0b111;
    key.values = {target.at(0), target.at(1), target.at(2)};
    out.clear();
    idx.probe_exact(key, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UnorderedBaseline_ProbeExact)->Arg(10000)->Arg(100000);

// The sliding-window hot loop (the workload every STeM runs forever):
// insert the newest arrival, expire the oldest, probe. One item = one
// insert+erase+probe round, so items_per_second is the directory's
// steady-state churn throughput. This is the headline flat-vs-unordered
// comparison: churn is where per-bucket node allocation and erase-side
// rehashing hurt the map, while the flat directory recycles slots in place.
void BM_BitAddress_InsertProbeChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t window = n / 2;
  const auto tuples = make_tuples(n, 21);
  BitAddressIndex idx(jas3(), config_for(n), BitMapper::hashing(3));
  for (std::size_t i = 0; i < window; ++i) idx.insert(tuples[i].get());
  Rng rng(22);
  std::vector<const Tuple*> out;
  std::size_t newest = window;
  std::size_t oldest = 0;
  for (auto _ : state) {
    idx.insert(tuples[newest].get());
    idx.erase(tuples[oldest].get());
    newest = (newest + 1) % n;
    oldest = (oldest + 1) % n;
    const Tuple& target = *tuples[(oldest + rng.below(window)) % n];
    ProbeKey key;
    key.mask = 0b111;
    key.values = {target.at(0), target.at(1), target.at(2)};
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitAddress_InsertProbeChurn)->Arg(10000)->Arg(100000);

void BM_UnorderedBaseline_InsertProbeChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t window = n / 2;
  const auto tuples = make_tuples(n, 21);
  UnorderedDirectoryIndex idx(config_for(n));
  for (std::size_t i = 0; i < window; ++i) idx.insert(tuples[i].get());
  Rng rng(22);
  std::vector<const Tuple*> out;
  std::size_t newest = window;
  std::size_t oldest = 0;
  for (auto _ : state) {
    idx.insert(tuples[newest].get());
    idx.erase(tuples[oldest].get());
    newest = (newest + 1) % n;
    oldest = (oldest + 1) % n;
    const Tuple& target = *tuples[(oldest + rng.below(window)) % n];
    ProbeKey key;
    key.mask = 0b111;
    key.values = {target.at(0), target.at(1), target.at(2)};
    out.clear();
    idx.probe_exact(key, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UnorderedBaseline_InsertProbeChurn)->Arg(10000)->Arg(100000);

void BM_BitAddress_ProbeWildcard(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 2);
  BitAddressIndex idx(jas3(), IndexConfig({4, 4, 4}), BitMapper::hashing(3));
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(4);
  std::vector<const Tuple*> out;
  const auto mask = static_cast<AttrMask>(state.range(0));
  for (auto _ : state) {
    const Tuple& target = *tuples[rng.below(kTuples)];
    ProbeKey key;
    key.mask = mask;
    key.values = {target.at(0), target.at(1), target.at(2)};
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitAddress_ProbeWildcard)->Arg(0b011)->Arg(0b001);

void BM_AccessModules_ProbeServed(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 5);
  AccessModuleSet idx(jas3(), module_masks(3));
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(6);
  std::vector<const Tuple*> out;
  for (auto _ : state) {
    const Tuple& target = *tuples[rng.below(kTuples)];
    ProbeKey key;
    key.mask = 0b001;  // served by the first module
    key.values = {target.at(0), 0, 0};
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AccessModules_ProbeServed);

void BM_AccessModules_ProbeFallbackScan(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 5);
  AccessModuleSet idx(jas3(), {0b001});  // only one module
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(7);
  std::vector<const Tuple*> out;
  for (auto _ : state) {
    const Tuple& target = *tuples[rng.below(kTuples)];
    ProbeKey key;
    key.mask = 0b100;  // no module serves this: full scan
    key.values = {0, 0, target.at(2)};
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AccessModules_ProbeFallbackScan);

void BM_Scan_Probe(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 8);
  ScanIndex idx(jas3());
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(9);
  std::vector<const Tuple*> out;
  for (auto _ : state) {
    const Tuple& target = *tuples[rng.below(kTuples)];
    ProbeKey key;
    key.mask = 0b111;
    key.values = {target.at(0), target.at(1), target.at(2)};
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Scan_Probe);

void BM_BitAddress_Migrate(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 10);
  BitAddressIndex idx(jas3(), IndexConfig({6, 0, 0}), BitMapper::hashing(3));
  for (const auto& t : tuples) idx.insert(t.get());
  const IndexConfig a({6, 0, 0});
  const IndexConfig b({2, 2, 2});
  bool flip = false;
  for (auto _ : state) {
    idx.reconfigure(flip ? a : b);
    flip = !flip;
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTuples));
}
BENCHMARK(BM_BitAddress_Migrate);

void BM_BitAddress_RangeProbe(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 13);
  BitAddressIndex idx(jas3(), IndexConfig({4, 4, 4}),
                      BitMapper::ranged({{0, kDomain - 1},
                                         {0, kDomain - 1},
                                         {0, kDomain - 1}}));
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(14);
  std::vector<const Tuple*> out;
  const auto width = static_cast<Value>(state.range(0));
  for (auto _ : state) {
    const Value lo = static_cast<Value>(rng.below(kDomain - width));
    RangeProbeKey key;
    key.bind(0, lo, lo + width);
    out.clear();
    benchmark::DoNotOptimize(idx.probe_range(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitAddress_RangeProbe)->Arg(10)->Arg(100);

void BM_Ordered_RangeProbe(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 13);
  OrderedIndex idx(jas3(), 0);
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(15);
  std::vector<const Tuple*> out;
  const auto width = static_cast<Value>(state.range(0));
  for (auto _ : state) {
    const Value lo = static_cast<Value>(rng.below(kDomain - width));
    RangeProbeKey key;
    key.bind(0, lo, lo + width);
    out.clear();
    benchmark::DoNotOptimize(idx.probe_range(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ordered_RangeProbe)->Arg(10)->Arg(100);

void BM_BitAddress_BulkLoad(benchmark::State& state) {
  const auto tuples = make_tuples(100000, 12);
  std::vector<const Tuple*> ptrs;
  ptrs.reserve(tuples.size());
  for (const auto& t : tuples) ptrs.push_back(t.get());
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads == 0 ? 1 : threads);
  for (auto _ : state) {
    BitAddressIndex idx(jas3(), IndexConfig({5, 5, 4}),
                        BitMapper::hashing(3));
    idx.bulk_load(ptrs, threads == 0 ? nullptr : &pool);
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ptrs.size()));
}
BENCHMARK(BM_BitAddress_BulkLoad)->Arg(0)->Arg(2)->Arg(4);

void BM_AccessModules_Retune(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 11);
  AccessModuleSet idx(jas3(), {0b001, 0b010});
  for (const auto& t : tuples) idx.insert(t.get());
  bool flip = false;
  for (auto _ : state) {
    idx.retune(flip ? std::vector<AttrMask>{0b001, 0b010}
                    : std::vector<AttrMask>{0b100, 0b011});
    flip = !flip;
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTuples));
}
BENCHMARK(BM_AccessModules_Retune);

}  // namespace

AMRI_BENCHMARK_MAIN()
