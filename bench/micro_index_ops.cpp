// MICRO-IDX — §III claims, measured on real hardware with google-benchmark:
//   * bit-address index maintenance is cheap and independent of how many
//     access patterns it serves;
//   * multi-hash access modules pay per-module insert/erase work;
//   * probe cost: exact-pattern BAI probes touch one bucket; wildcard
//     probes enumerate candidate buckets; module-less patterns full-scan;
//   * migration (IC change) rehashes each stored tuple once.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "index/access_module_set.hpp"
#include "index/bit_address_index.hpp"
#include "index/ordered_index.hpp"
#include "index/scan_index.hpp"

namespace {

using namespace amri;
using namespace amri::index;

constexpr std::size_t kTuples = 10000;
constexpr std::int64_t kDomain = 1000;

std::vector<std::unique_ptr<Tuple>> make_tuples(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<Tuple>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto t = std::make_unique<Tuple>();
    t->seq = i;
    for (int a = 0; a < 3; ++a) {
      t->values.push_back(static_cast<Value>(
          rng.below(static_cast<std::uint64_t>(kDomain))));
    }
    out.push_back(std::move(t));
  }
  return out;
}

JoinAttributeSet jas3() { return JoinAttributeSet({0, 1, 2}); }

std::vector<AttrMask> module_masks(std::size_t k) {
  const AttrMask all[] = {0b001, 0b010, 0b100, 0b011, 0b101, 0b110, 0b111};
  return {all, all + k};
}

void BM_BitAddress_Insert(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 1);
  const auto bits = static_cast<std::uint8_t>(state.range(0));
  for (auto _ : state) {
    BitAddressIndex idx(jas3(), IndexConfig({bits, bits, bits}),
                        BitMapper::hashing(3));
    for (const auto& t : tuples) idx.insert(t.get());
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTuples));
}
BENCHMARK(BM_BitAddress_Insert)->Arg(2)->Arg(4);

void BM_AccessModules_Insert(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 1);
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    AccessModuleSet idx(jas3(), module_masks(k));
    for (const auto& t : tuples) idx.insert(t.get());
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTuples));
}
BENCHMARK(BM_AccessModules_Insert)->Arg(1)->Arg(3)->Arg(5)->Arg(7);

void BM_BitAddress_ProbeExact(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 2);
  BitAddressIndex idx(jas3(), IndexConfig({4, 4, 4}), BitMapper::hashing(3));
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(3);
  std::vector<const Tuple*> out;
  for (auto _ : state) {
    const Tuple& target = *tuples[rng.below(kTuples)];
    ProbeKey key;
    key.mask = 0b111;
    key.values = {target.at(0), target.at(1), target.at(2)};
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitAddress_ProbeExact);

void BM_BitAddress_ProbeWildcard(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 2);
  BitAddressIndex idx(jas3(), IndexConfig({4, 4, 4}), BitMapper::hashing(3));
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(4);
  std::vector<const Tuple*> out;
  const auto mask = static_cast<AttrMask>(state.range(0));
  for (auto _ : state) {
    const Tuple& target = *tuples[rng.below(kTuples)];
    ProbeKey key;
    key.mask = mask;
    key.values = {target.at(0), target.at(1), target.at(2)};
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitAddress_ProbeWildcard)->Arg(0b011)->Arg(0b001);

void BM_AccessModules_ProbeServed(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 5);
  AccessModuleSet idx(jas3(), module_masks(3));
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(6);
  std::vector<const Tuple*> out;
  for (auto _ : state) {
    const Tuple& target = *tuples[rng.below(kTuples)];
    ProbeKey key;
    key.mask = 0b001;  // served by the first module
    key.values = {target.at(0), 0, 0};
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AccessModules_ProbeServed);

void BM_AccessModules_ProbeFallbackScan(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 5);
  AccessModuleSet idx(jas3(), {0b001});  // only one module
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(7);
  std::vector<const Tuple*> out;
  for (auto _ : state) {
    const Tuple& target = *tuples[rng.below(kTuples)];
    ProbeKey key;
    key.mask = 0b100;  // no module serves this: full scan
    key.values = {0, 0, target.at(2)};
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AccessModules_ProbeFallbackScan);

void BM_Scan_Probe(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 8);
  ScanIndex idx(jas3());
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(9);
  std::vector<const Tuple*> out;
  for (auto _ : state) {
    const Tuple& target = *tuples[rng.below(kTuples)];
    ProbeKey key;
    key.mask = 0b111;
    key.values = {target.at(0), target.at(1), target.at(2)};
    out.clear();
    benchmark::DoNotOptimize(idx.probe(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Scan_Probe);

void BM_BitAddress_Migrate(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 10);
  BitAddressIndex idx(jas3(), IndexConfig({6, 0, 0}), BitMapper::hashing(3));
  for (const auto& t : tuples) idx.insert(t.get());
  const IndexConfig a({6, 0, 0});
  const IndexConfig b({2, 2, 2});
  bool flip = false;
  for (auto _ : state) {
    idx.reconfigure(flip ? a : b);
    flip = !flip;
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTuples));
}
BENCHMARK(BM_BitAddress_Migrate);

void BM_BitAddress_RangeProbe(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 13);
  BitAddressIndex idx(jas3(), IndexConfig({4, 4, 4}),
                      BitMapper::ranged({{0, kDomain - 1},
                                         {0, kDomain - 1},
                                         {0, kDomain - 1}}));
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(14);
  std::vector<const Tuple*> out;
  const auto width = static_cast<Value>(state.range(0));
  for (auto _ : state) {
    const Value lo = static_cast<Value>(rng.below(kDomain - width));
    RangeProbeKey key;
    key.bind(0, lo, lo + width);
    out.clear();
    benchmark::DoNotOptimize(idx.probe_range(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BitAddress_RangeProbe)->Arg(10)->Arg(100);

void BM_Ordered_RangeProbe(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 13);
  OrderedIndex idx(jas3(), 0);
  for (const auto& t : tuples) idx.insert(t.get());
  Rng rng(15);
  std::vector<const Tuple*> out;
  const auto width = static_cast<Value>(state.range(0));
  for (auto _ : state) {
    const Value lo = static_cast<Value>(rng.below(kDomain - width));
    RangeProbeKey key;
    key.bind(0, lo, lo + width);
    out.clear();
    benchmark::DoNotOptimize(idx.probe_range(key, out));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Ordered_RangeProbe)->Arg(10)->Arg(100);

void BM_BitAddress_BulkLoad(benchmark::State& state) {
  const auto tuples = make_tuples(100000, 12);
  std::vector<const Tuple*> ptrs;
  ptrs.reserve(tuples.size());
  for (const auto& t : tuples) ptrs.push_back(t.get());
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads == 0 ? 1 : threads);
  for (auto _ : state) {
    BitAddressIndex idx(jas3(), IndexConfig({5, 5, 4}),
                        BitMapper::hashing(3));
    idx.bulk_load(ptrs, threads == 0 ? nullptr : &pool);
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ptrs.size()));
}
BENCHMARK(BM_BitAddress_BulkLoad)->Arg(0)->Arg(2)->Arg(4);

void BM_AccessModules_Retune(benchmark::State& state) {
  const auto tuples = make_tuples(kTuples, 11);
  AccessModuleSet idx(jas3(), {0b001, 0b010});
  for (const auto& t : tuples) idx.insert(t.get());
  bool flip = false;
  for (auto _ : state) {
    idx.retune(flip ? std::vector<AttrMask>{0b001, 0b010}
                    : std::vector<AttrMask>{0b100, 0b011});
    flip = !flip;
    benchmark::DoNotOptimize(idx.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTuples));
}
BENCHMARK(BM_AccessModules_Retune);

}  // namespace

BENCHMARK_MAIN();
