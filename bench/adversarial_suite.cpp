// ADV-SUITE — the adversarial scenario matrix: every named scenario from
// src/workload/adversarial.hpp run twice, with the tuner's production
// guardrails off (legacy always-migrate rule) and on (default
// GuardrailOptions). Per run it records migrations, guardrail-suppressed
// decisions, outputs, death time, peak memory, and the end-state probe
// cost (mean realized probe cost over the final third of the run, read
// off the tuner decision timeline); per scenario it derives the
// migration-cut ratio and the end-state probe-cost ratio — the
// thrash-containment headline (rotating_hot_set: guardrails must cut
// migrations >= 5x without degrading end-state probe cost).
//
//   ./adversarial_suite [scenario=<name|all>] [sim_seconds=60] [rate=50]
//       [json=<path>] [trace_out=<prefix>]
//
// With trace_out=<prefix> every run's full telemetry (including the
// per-decision guardrail verdicts) is written to
// <prefix>_<scenario>_<legacy|guardrails>.jsonl — the CI artifact.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workload/adversarial.hpp"

namespace {

using namespace amri;

/// Pull a numeric field out of a prebuilt JSON payload fragment. Bench-
/// grade scanning (the payloads are machine-written by JsonWriter, so
/// `"name":` occurs exactly once, unquoted).
bool payload_number(const std::string& payload, const std::string& name,
                    double& out) {
  const std::string needle = "\"" + name + "\":";
  const auto pos = payload.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = payload.c_str() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  out = v;
  return true;
}

/// Mean realized probe cost over tuner decisions at t >= tail_start: the
/// "end-state" probe cost once the tuner has settled (or kept thrashing).
double tail_realized_probe_us(const telemetry::Telemetry& telemetry,
                              TimeMicros tail_start) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& ev : telemetry.events().snapshot()) {
    if (ev.kind != telemetry::EventKind::kTunerDecision) continue;
    if (ev.t < tail_start) continue;
    double realized = -1.0;
    if (payload_number(ev.payload, "realized_probe_us", realized) &&
        realized >= 0.0) {
      sum += realized;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : -1.0;
}

struct RunStats {
  std::uint64_t migrations = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t outputs = 0;
  double died_at_sec = -1.0;
  std::size_t peak_memory = 0;
  double tail_probe_us = -1.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  const double sim_seconds = cfg.double_or("sim_seconds", 60.0);
  const double rate = cfg.double_or("rate", 80.0);
  const auto seed = static_cast<std::uint64_t>(cfg.int_or("seed", 1));
  const std::string which = cfg.string_or("scenario", "all");

  std::vector<std::string> names;
  if (which == "all") {
    names = workload::AdversarialScenario::names();
  } else {
    names.push_back(which);
  }

  std::cout << "=== Adversarial scenario matrix (guardrails off/on, "
            << sim_seconds << "s) ===\n\n";
  TablePrinter table({"scenario", "guardrails", "migrations", "suppressed",
                      "tail_probe_us", "outputs", "died_at_sec"});
  std::vector<BenchRecord> records;

  for (const auto& name : names) {
    RunStats stats[2];
    for (int guarded = 0; guarded < 2; ++guarded) {
      workload::AdversarialOptions aopts;
      aopts.rate_per_sec = rate;
      aopts.seed = seed;
      aopts.generate_seconds = 0.0;  // unbounded; the executor stops the run
      const auto scenario = workload::AdversarialScenario::make(name, aopts);

      auto eopts = scenario->executor_options();
      eopts.duration = seconds_to_micros(sim_seconds);
      eopts.sample_every = seconds_to_micros(sim_seconds / 6.0);
      eopts.stem.backend = engine::IndexBackend::kAmri;
      const std::size_t n_attrs = scenario->query().layout(0).jas.size();
      constexpr int kBitBudget = 8;
      std::vector<std::uint8_t> bits(n_attrs, 0);
      for (int b = 0; b < kBitBudget; ++b) {
        ++bits[static_cast<std::size_t>(b) % n_attrs];
      }
      eopts.stem.initial_config = index::IndexConfig(bits);
      tuner::TunerOptions topts;
      topts.optimizer.bit_budget = kBitBudget;
      if (guarded != 0) {
        tuner::GuardrailOptions g;  // default production settings
        g.enabled = true;
        topts.guardrails = g;
      }
      eopts.stem.amri_tuner = topts;

      telemetry::TelemetryOptions tel_opts;
      tel_opts.event_capacity = cfg.size_or("event_capacity", 1u << 19);
      telemetry::Telemetry telemetry(tel_opts);
      eopts.telemetry = &telemetry;

      engine::Executor ex(scenario->query(), eopts);
      const auto source = scenario->make_source();
      const auto r = ex.run(*source);

      RunStats& s = stats[guarded];
      for (const auto& st : r.states) {
        s.migrations += st.migrations;
        s.suppressed += st.suppressed;
      }
      s.outputs = r.outputs;
      s.died_at_sec = r.died_at ? micros_to_seconds(*r.died_at) : -1.0;
      s.peak_memory = r.peak_memory;
      s.tail_probe_us = tail_realized_probe_us(
          telemetry, seconds_to_micros(sim_seconds * 2.0 / 3.0));

      const std::string label = guarded != 0 ? "guardrails" : "legacy";
      table.add_row({name, label,
                     TablePrinter::fmt_int(
                         static_cast<long long>(s.migrations)),
                     TablePrinter::fmt_int(
                         static_cast<long long>(s.suppressed)),
                     s.tail_probe_us >= 0.0 ? TablePrinter::fmt(s.tail_probe_us)
                                            : "-",
                     TablePrinter::fmt_int(static_cast<long long>(s.outputs)),
                     s.died_at_sec >= 0.0 ? TablePrinter::fmt(s.died_at_sec, 0)
                                          : "-"});

      const std::string key = name + "/" + label;
      records.push_back(
          {key, "migrations", static_cast<double>(s.migrations)});
      records.push_back(
          {key, "suppressed", static_cast<double>(s.suppressed)});
      records.push_back({key, "tail_probe_us", s.tail_probe_us});
      records.push_back({key, "outputs", static_cast<double>(s.outputs)});
      records.push_back({key, "died_at_sec", s.died_at_sec});
      records.push_back(
          {key, "peak_memory_bytes", static_cast<double>(s.peak_memory)});
      maybe_write_trace(cfg, telemetry, name + "_" + label);
      std::cerr << "[adv-suite] " << name << " " << label
                << " migrations=" << s.migrations
                << " suppressed=" << s.suppressed
                << " tail_probe_us=" << s.tail_probe_us << "\n";
    }
    // Headline ratios: legacy / guarded migrations (thrash cut; higher is
    // better) and guarded / legacy end-state probe cost (<= 1.1 required).
    if (stats[1].migrations > 0) {
      records.push_back({name, "migration_cut",
                         static_cast<double>(stats[0].migrations) /
                             static_cast<double>(stats[1].migrations)});
    }
    if (stats[0].tail_probe_us > 0.0 && stats[1].tail_probe_us >= 0.0) {
      records.push_back({name, "tail_probe_ratio",
                         stats[1].tail_probe_us / stats[0].tail_probe_us});
    }
  }

  table.print(std::cout);
  maybe_write_json(cfg, records);
  return 0;
}
