// ABL-BITS — §III (the IC bit budget): sweep the total bits available to
// each state's bit-address index. Too few bits leave buckets overfull
// (probe compares grow); beyond a point, extra bits stop paying because
// buckets are already near-singleton for the hot access patterns.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace amri;
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  EvalParams params = EvalParams::from_config(cfg);
  if (!cfg.has("sim_seconds")) params.duration_seconds = 240.0;
  if (!cfg.has("warmup")) params.warmup_seconds = 60.0;

  std::cout << "=== Ablation: IC bit budget (AMRI, CDIA-hc) ===\n\n";
  TablePrinter table({"bits", "outputs", "migrations", "charged_virtual_s",
                      "peak_mem_kb"});
  const MethodSpec method{"AMRI", engine::IndexBackend::kAmri,
                          assessment::AssessorKind::kCdiaHighestCount, 0};
  for (const int bits : {2, 4, 6, 8, 10, 12, 14, 16}) {
    EvalParams p = params;
    p.bit_budget = bits;
    const auto scenario = make_scenario(p);
    const auto r = run_method(scenario, p, method);
    std::uint64_t migrations = 0;
    for (const auto& s : r.states) migrations += s.migrations;
    table.add_row({TablePrinter::fmt_int(bits),
                   TablePrinter::fmt_int(static_cast<long long>(r.outputs)),
                   TablePrinter::fmt_int(static_cast<long long>(migrations)),
                   TablePrinter::fmt(r.charged_us / 1e6, 1),
                   TablePrinter::fmt_int(
                       static_cast<long long>(r.peak_memory / 1024))});
    std::cerr << "[abl-bits] bits=" << bits << " outputs=" << r.outputs
              << "\n";
  }
  table.print(std::cout);
  return 0;
}
