// ABL-COST — cost-model ablation: index selection under the paper's
// Equation 1 versus the extended model that also charges the wildcard
// bucket-enumeration a physical probe actually performs. The extended
// model penalises bits on rarely-bound attributes and shifts the selected
// ICs; this bench reports the end-to-end effect.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace amri;
  using namespace amri::bench;

  const Config cfg = Config::from_args(argc, argv);
  EvalParams params = EvalParams::from_config(cfg);
  if (!cfg.has("sim_seconds")) params.duration_seconds = 240.0;
  if (!cfg.has("warmup")) params.warmup_seconds = 60.0;

  std::cout << "=== Ablation: paper cost model (Eq. 1) vs extended "
               "(wildcard bucket term) ===\n\n";
  TablePrinter table({"cost_model", "outputs", "migrations", "peak_mem_kb"});
  const MethodSpec method{"AMRI", engine::IndexBackend::kAmri,
                          assessment::AssessorKind::kCdiaHighestCount, 0};
  for (const bool extended : {false, true}) {
    const auto scenario = make_scenario(params);
    auto eopts = make_executor_options(scenario, params, method);
    eopts.stem.amri_tuner->optimizer.use_extended_cost = extended;
    engine::Executor ex(scenario.query(), eopts);
    const auto src = scenario.make_source();
    const auto r = ex.run(*src);
    std::uint64_t migrations = 0;
    for (const auto& s : r.states) migrations += s.migrations;
    table.add_row({extended ? "extended" : "paper_eq1",
                   TablePrinter::fmt_int(static_cast<long long>(r.outputs)),
                   TablePrinter::fmt_int(static_cast<long long>(migrations)),
                   TablePrinter::fmt_int(
                       static_cast<long long>(r.peak_memory / 1024))});
    std::cerr << "[abl-cost] " << (extended ? "extended" : "paper")
              << " outputs=" << r.outputs << "\n";
  }
  table.print(std::cout);
  return 0;
}
